//! The [`Stage`]/[`Partitioner`] traits and the two stage combinators:
//! sequential [`Pipeline`]s and escalating [`FallbackChain`]s.

use super::context::{RunContext, StageEvent};
use crate::{PartitionError, PartitionResult};
use np_netlist::Hypergraph;

/// One step of a partitioning flow: consumes the hypergraph, an optional
/// upstream partition and the shared [`RunContext`], and produces a
/// partition.
///
/// Producers (EIG1, IG-Match, FM, …) ignore `input`; transformers
/// (ratio-cut refinement) require it. Implement [`Partitioner`] instead
/// when the stage never looks at `input` — a blanket impl lifts every
/// `Partitioner` into a `Stage`.
pub trait Stage {
    /// Short human-readable stage name, used in events and diagnostics.
    fn name(&self) -> &'static str;

    /// Executes the stage.
    ///
    /// # Errors
    ///
    /// Any [`PartitionError`]; combinators decide whether an error ends
    /// the flow ([`Pipeline`]) or escalates to the next alternative
    /// ([`FallbackChain`]).
    fn run(
        &self,
        hg: &Hypergraph,
        input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError>;
}

/// A [`Stage`] that produces a partition from scratch, ignoring upstream
/// input. Every `Partitioner` is automatically a `Stage`.
pub trait Partitioner {
    /// Short human-readable name, used in events and diagnostics.
    fn name(&self) -> &'static str;

    /// Produces a partition of `hg`.
    ///
    /// # Errors
    ///
    /// Any [`PartitionError`].
    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError>;
}

impl<P: Partitioner> Stage for P {
    fn name(&self) -> &'static str {
        Partitioner::name(self)
    }

    fn run(
        &self,
        hg: &Hypergraph,
        _input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition(hg, ctx)
    }
}

/// Runs one stage with [`StageEvent::Started`]/[`StageEvent::Finished`]
/// instrumentation around it. The combinators route every stage execution
/// through this, so an attached sink sees the whole stage graph unfold.
///
/// # Errors
///
/// Whatever the stage returns.
pub fn run_stage(
    stage: &dyn Stage,
    hg: &Hypergraph,
    input: Option<PartitionResult>,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    ctx.emit(StageEvent::Started {
        stage: stage.name(),
    });
    let outcome = stage.run(hg, input, ctx);
    ctx.emit(StageEvent::Finished {
        stage: stage.name(),
        outcome: outcome.as_ref(),
    });
    outcome
}

/// A boxed stage that can be shared across threads — the storage type of
/// the combinators and of every multi-attempt executor (the `np-runner`
/// portfolio pool distributes `BoxedStage`s over scoped worker threads).
/// Every concrete stage in the workspace is a plain options struct, so
/// the bound costs nothing.
pub type BoxedStage = Box<dyn Stage + Send + Sync>;

/// A sequence of stages executed left to right, each receiving the
/// previous stage's partition as input. The pipeline is itself a
/// [`Stage`], so pipelines nest.
///
/// # Example
///
/// ```
/// use np_core::engine::stages::{IgMatchStage, RatioRefineStage};
/// use np_core::engine::{Pipeline, RunContext, Stage};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let flow = Pipeline::named("IG-Match+FM")
///     .then(IgMatchStage::default())
///     .then(RatioRefineStage::new(20, "IG-Match+FM"));
/// let result = flow.run(&hg, None, &RunContext::unlimited())?;
/// assert_eq!(result.stats.cut_nets, 1);
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub struct Pipeline {
    name: &'static str,
    stages: Vec<BoxedStage>,
}

impl Pipeline {
    /// An empty pipeline with the given display name.
    pub fn named(name: &'static str) -> Self {
        Pipeline {
            name,
            stages: Vec::new(),
        }
    }

    /// Appends a stage (builder style).
    #[must_use]
    pub fn then(mut self, stage: impl Stage + Send + Sync + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if no stage has been added yet.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Stage for Pipeline {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(
        &self,
        hg: &Hypergraph,
        mut input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        if self.stages.is_empty() {
            return Err(PartitionError::InvalidInput {
                reason: "pipeline has no stages",
            });
        }
        for stage in &self.stages {
            input = Some(run_stage(stage.as_ref(), hg, input.take(), ctx)?);
        }
        Ok(input.expect("non-empty pipeline always produces a result"))
    }
}

/// The default fatality predicate of a [`FallbackChain`]: a spent budget
/// or a structurally hopeless input dooms every later alternative too, so
/// the chain aborts instead of burning time.
pub fn default_fatal(error: &PartitionError) -> bool {
    matches!(
        error,
        PartitionError::Budget(_) | PartitionError::TooSmall { .. }
    )
}

/// Record of one attempted link of a [`FallbackChain`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChainAttempt<L> {
    /// The link's label.
    pub label: L,
    /// `None` if this link produced the final result, otherwise the error
    /// that made the chain move on (or abort).
    pub error: Option<PartitionError>,
}

/// Successful outcome of a [`FallbackChain`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainOutcome<L> {
    /// The partition produced by the winning link.
    pub result: PartitionResult,
    /// Label of the winning link.
    pub winner: L,
    /// Every attempted link in order; the last entry is the winner.
    pub attempts: Vec<ChainAttempt<L>>,
}

/// Failure of a whole [`FallbackChain`], with the attempt record attached.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainFailure<L> {
    /// The decisive error: the aborting error for fatal failures,
    /// otherwise the last link's error.
    pub error: PartitionError,
    /// Every attempted link in order (partial progress included).
    pub attempts: Vec<ChainAttempt<L>>,
}

/// An ordered list of labelled alternatives: each link runs only if every
/// earlier link failed non-fatally. The first success wins; a fatal error
/// (see [`default_fatal`]) aborts the chain at once.
///
/// Labels are caller-chosen (`&'static str`, an enum, …) and come back in
/// [`ChainOutcome::winner`] and the attempt records, so callers can
/// pattern-match on *which* alternative produced the answer.
///
/// # Example
///
/// ```
/// use np_core::engine::stages::{FmStage, IgMatchStage};
/// use np_core::engine::{FallbackChain, RunContext};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let chain = FallbackChain::new()
///     .link("spectral", IgMatchStage::default())
///     .link("combinatorial", FmStage::default());
/// let out = chain.run(&hg, &RunContext::unlimited()).unwrap();
/// assert_eq!(out.winner, "spectral");
/// ```
pub struct FallbackChain<L> {
    links: Vec<(L, BoxedStage)>,
    fatal: fn(&PartitionError) -> bool,
}

impl<L: Copy> FallbackChain<L> {
    /// An empty chain with the [`default_fatal`] abort policy.
    pub fn new() -> Self {
        FallbackChain {
            links: Vec::new(),
            fatal: default_fatal,
        }
    }

    /// Appends a labelled alternative (builder style).
    #[must_use]
    pub fn link(mut self, label: L, stage: impl Stage + Send + Sync + 'static) -> Self {
        self.links.push((label, Box::new(stage)));
        self
    }

    /// Replaces the fatality predicate (builder style).
    #[must_use]
    pub fn with_fatal(mut self, fatal: fn(&PartitionError) -> bool) -> Self {
        self.fatal = fatal;
        self
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` if no link has been added yet.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Runs the chain until a link succeeds.
    ///
    /// # Errors
    ///
    /// [`ChainFailure`] when every link failed, a link failed fatally, or
    /// the chain is empty (reported as
    /// [`PartitionError::InvalidInput`]).
    pub fn run(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<ChainOutcome<L>, ChainFailure<L>> {
        if self.links.is_empty() {
            return Err(ChainFailure {
                error: PartitionError::InvalidInput {
                    reason: "fallback chain has no links",
                },
                attempts: Vec::new(),
            });
        }
        let mut attempts: Vec<ChainAttempt<L>> = Vec::new();
        for (label, stage) in &self.links {
            match run_stage(stage.as_ref(), hg, None, ctx) {
                Ok(result) => {
                    attempts.push(ChainAttempt {
                        label: *label,
                        error: None,
                    });
                    return Ok(ChainOutcome {
                        result,
                        winner: *label,
                        attempts,
                    });
                }
                Err(error) => {
                    let fatal = (self.fatal)(&error);
                    attempts.push(ChainAttempt {
                        label: *label,
                        error: Some(error.clone()),
                    });
                    if fatal {
                        return Err(ChainFailure { error, attempts });
                    }
                }
            }
        }
        let error = attempts
            .last()
            .and_then(|a| a.error.clone())
            .expect("non-empty failed chain records at least one error");
        Err(ChainFailure { error, attempts })
    }
}

impl<L: Copy> Default for FallbackChain<L> {
    fn default() -> Self {
        FallbackChain::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId};
    use std::sync::Mutex;

    /// Test double: succeeds or fails on command, recording its inputs.
    struct Scripted {
        name: &'static str,
        fail_with: Option<PartitionError>,
        saw_input: Mutex<Vec<bool>>,
    }

    impl Scripted {
        fn ok(name: &'static str) -> Self {
            Scripted {
                name,
                fail_with: None,
                saw_input: Mutex::new(Vec::new()),
            }
        }

        fn failing(name: &'static str, error: PartitionError) -> Self {
            Scripted {
                name,
                fail_with: Some(error),
                saw_input: Mutex::new(Vec::new()),
            }
        }
    }

    impl Stage for Scripted {
        fn name(&self) -> &'static str {
            self.name
        }

        fn run(
            &self,
            hg: &Hypergraph,
            input: Option<PartitionResult>,
            _ctx: &RunContext<'_>,
        ) -> Result<PartitionResult, PartitionError> {
            self.saw_input.lock().unwrap().push(input.is_some());
            if let Some(e) = &self.fail_with {
                return Err(e.clone());
            }
            let partition = Bipartition::from_left_set(hg.num_modules(), [ModuleId(0)]);
            Ok(PartitionResult::evaluate(hg, partition, self.name, None))
        }
    }

    fn tiny() -> Hypergraph {
        hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]])
    }

    fn budget_error() -> PartitionError {
        use np_sparse::{Budget, BudgetMeter};
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(0));
        PartitionError::Budget(meter.check().unwrap_err())
    }

    #[test]
    fn pipeline_threads_input_forward() {
        let flow = Pipeline::named("flow")
            .then(Scripted::ok("a"))
            .then(Scripted::ok("b"));
        let result = flow.run(&tiny(), None, &RunContext::unlimited()).unwrap();
        assert_eq!(result.algorithm, "b");
        assert_eq!(flow.len(), 2);
    }

    #[test]
    fn pipeline_stops_on_error() {
        let flow = Pipeline::named("flow")
            .then(Scripted::failing("a", PartitionError::Degenerate))
            .then(Scripted::ok("b"));
        assert!(matches!(
            flow.run(&tiny(), None, &RunContext::unlimited()),
            Err(PartitionError::Degenerate)
        ));
    }

    #[test]
    fn empty_pipeline_rejected() {
        let flow = Pipeline::named("empty");
        assert!(flow.is_empty());
        assert!(matches!(
            flow.run(&tiny(), None, &RunContext::unlimited()),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn chain_first_success_wins() {
        let chain = FallbackChain::new()
            .link("a", Scripted::failing("a", PartitionError::Degenerate))
            .link("b", Scripted::ok("b"))
            .link("c", Scripted::ok("c"));
        let out = chain.run(&tiny(), &RunContext::unlimited()).unwrap();
        assert_eq!(out.winner, "b");
        assert_eq!(out.result.algorithm, "b");
        assert_eq!(out.attempts.len(), 2);
        assert!(out.attempts[0].error.is_some());
        assert!(out.attempts[1].error.is_none());
    }

    #[test]
    fn chain_fatal_error_aborts() {
        let chain = FallbackChain::new()
            .link("a", Scripted::failing("a", budget_error()))
            .link("b", Scripted::ok("b"));
        let fail = chain.run(&tiny(), &RunContext::unlimited()).unwrap_err();
        assert!(matches!(fail.error, PartitionError::Budget(_)));
        assert_eq!(fail.attempts.len(), 1, "link b must never run");
    }

    #[test]
    fn chain_custom_fatal_predicate() {
        // treat nothing as fatal: the chain tries every link
        let chain = FallbackChain::new()
            .with_fatal(|_| false)
            .link("a", Scripted::failing("a", budget_error()))
            .link("b", Scripted::ok("b"));
        let out = chain.run(&tiny(), &RunContext::unlimited()).unwrap();
        assert_eq!(out.winner, "b");
    }

    #[test]
    fn chain_all_fail_reports_last_error() {
        let chain = FallbackChain::new()
            .link("a", Scripted::failing("a", PartitionError::Degenerate))
            .link(
                "b",
                Scripted::failing("b", PartitionError::InvalidInput { reason: "scripted" }),
            );
        let fail = chain.run(&tiny(), &RunContext::unlimited()).unwrap_err();
        assert!(matches!(fail.error, PartitionError::InvalidInput { .. }));
        assert_eq!(fail.attempts.len(), 2);
    }

    #[test]
    fn empty_chain_rejected() {
        let chain: FallbackChain<&'static str> = FallbackChain::new();
        assert!(chain.is_empty());
        let fail = chain.run(&tiny(), &RunContext::unlimited()).unwrap_err();
        assert!(matches!(fail.error, PartitionError::InvalidInput { .. }));
    }

    #[test]
    fn run_stage_emits_start_and_finish() {
        use super::super::context::StageEvent;
        let log = Mutex::new(Vec::<String>::new());
        let sink = |e: &StageEvent<'_>| {
            let line = match e {
                StageEvent::Started { stage } => format!("start {stage}"),
                StageEvent::Finished { stage, outcome } => {
                    format!("finish {stage} ok={}", outcome.is_ok())
                }
                StageEvent::Detail { stage, message } => format!("detail {stage}: {message}"),
            };
            log.lock().unwrap().push(line);
        };
        let ctx = RunContext::unlimited().with_events(&sink);
        let stage = Scripted::ok("demo");
        run_stage(&stage, &tiny(), None, &ctx).unwrap();
        let log = log.into_inner().unwrap();
        assert_eq!(log, vec!["start demo", "finish demo ok=true"]);
    }
}
