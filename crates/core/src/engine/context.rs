//! The shared execution context threaded through every engine stage.

use crate::engine::OperatorCache;
use crate::models::IgWeighting;
use crate::{PartitionError, PartitionResult};
use np_netlist::rng::{derive_seed, Rng64};
use np_netlist::Hypergraph;
use np_sparse::{Budget, BudgetMeter, Laplacian};
use std::sync::Arc;

/// Default PRNG seed for contexts that do not set one explicitly.
///
/// Stage adapters that already carry a seed in their option structs (the
/// Lanczos seed, the RCut/KL restart seeds) keep using those, so existing
/// results stay bit-identical; this seed only feeds [`RunContext::rng`]
/// for stages with no per-algorithm seed of their own.
pub const DEFAULT_SEED: u64 = 0x0DAC_1992;

/// An instrumentation event emitted while a stage graph executes.
///
/// Events borrow from the emitting stage, so sinks must copy out anything
/// they want to keep.
#[derive(Debug)]
pub enum StageEvent<'a> {
    /// A stage is about to run.
    Started {
        /// Name of the stage.
        stage: &'a str,
    },
    /// A stage finished, successfully or not.
    Finished {
        /// Name of the stage.
        stage: &'a str,
        /// The stage's outcome, by reference.
        outcome: Result<&'a PartitionResult, &'a PartitionError>,
    },
    /// A stage reports a human-readable detail mid-run (e.g. IG-Match's
    /// matching bound at the winning split).
    Detail {
        /// Name of the stage.
        stage: &'a str,
        /// The detail message.
        message: &'a str,
    },
}

/// A sink for [`StageEvent`]s.
///
/// Implemented for any `Fn(&StageEvent<'_>) + Sync` closure, so ad-hoc
/// tracers need no named type:
///
/// ```
/// use np_core::engine::{RunContext, StageEvent};
///
/// let tracer = |e: &StageEvent<'_>| {
///     if let StageEvent::Started { stage } = e {
///         eprintln!("running {stage}");
///     }
/// };
/// let ctx = RunContext::unlimited().with_events(&tracer);
/// ctx.emit(StageEvent::Started { stage: "demo" });
/// ```
pub trait EventSink: Sync {
    /// Receives one event. Called synchronously from the executing stage.
    fn on_event(&self, event: &StageEvent<'_>);
}

impl<F: Fn(&StageEvent<'_>) + Sync> EventSink for F {
    fn on_event(&self, event: &StageEvent<'_>) {
        self(event)
    }
}

/// Either an owned or a borrowed meter, so a context can be built from a
/// [`Budget`] in one call *or* share a caller's existing meter.
#[derive(Debug)]
enum MeterSlot<'a> {
    Owned(BudgetMeter),
    Borrowed(&'a BudgetMeter),
}

/// Everything a [`Stage`](crate::engine::Stage) needs besides the
/// hypergraph: the budget meter, the base PRNG seed and an optional
/// event sink.
///
/// One context is shared by every stage of a run, so all stages charge
/// the same meter and derive their randomness from the same seed. The
/// context is `Sync`, which keeps the door open for stage-level
/// parallelism in later work.
///
/// # Example
///
/// ```
/// use np_core::engine::RunContext;
/// use np_sparse::Budget;
///
/// let ctx = RunContext::with_budget(&Budget::default().with_matvecs(10_000)).with_seed(7);
/// assert_eq!(ctx.seed(), 7);
/// assert!(ctx.meter().check().is_ok());
/// ```
#[derive(Debug)]
pub struct RunContext<'a> {
    meter: MeterSlot<'a>,
    seed: u64,
    events: Option<&'a dyn EventSink>,
    threads: usize,
    operators: Arc<OperatorCache>,
}

impl std::fmt::Debug for dyn EventSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink")
    }
}

impl<'a> RunContext<'a> {
    /// A context with no resource limits.
    pub fn unlimited() -> RunContext<'a> {
        RunContext {
            meter: MeterSlot::Owned(BudgetMeter::unlimited()),
            seed: DEFAULT_SEED,
            events: None,
            threads: 1,
            operators: Arc::new(OperatorCache::new()),
        }
    }

    /// A context metering against `budget`, with the wall clock starting
    /// now.
    pub fn with_budget(budget: &Budget) -> RunContext<'a> {
        RunContext {
            meter: MeterSlot::Owned(BudgetMeter::new(budget)),
            seed: DEFAULT_SEED,
            events: None,
            threads: 1,
            operators: Arc::new(OperatorCache::new()),
        }
    }

    /// A context charging a caller-owned meter, so several runs (or a run
    /// plus outside work) can share one allowance.
    pub fn with_meter(meter: &'a BudgetMeter) -> RunContext<'a> {
        RunContext {
            meter: MeterSlot::Borrowed(meter),
            seed: DEFAULT_SEED,
            events: None,
            threads: 1,
            operators: Arc::new(OperatorCache::new()),
        }
    }

    /// Sets the base PRNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an event sink (builder style).
    #[must_use]
    pub fn with_events(mut self, sink: &'a dyn EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Sets the thread count for sharded kernels (builder style): the
    /// row-sharded SpMV inside the eigensolver and the sharded graph
    /// builders. `0` means all available cores. Results are bit-identical
    /// for every value — this knob trades wall-clock only.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares a caller-owned operator cache (builder style), so several
    /// contexts — e.g. every attempt of an `np-runner` portfolio — reuse
    /// one set of Laplacians instead of rebuilding them per attempt.
    #[must_use]
    pub fn with_operator_cache(mut self, cache: Arc<OperatorCache>) -> Self {
        self.operators = cache;
        self
    }

    /// The budget meter every stage of this run charges.
    pub fn meter(&self) -> &BudgetMeter {
        match &self.meter {
            MeterSlot::Owned(m) => m,
            MeterSlot::Borrowed(m) => m,
        }
    }

    /// The base PRNG seed of this run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh generator seeded with the base seed (stream 0).
    pub fn rng(&self) -> Rng64 {
        Rng64::new(self.seed)
    }

    /// The seed of the `stream`-th decorrelated sub-stream (golden-ratio
    /// stride; see [`derive_seed`]). Stream 0 is the base seed itself.
    pub fn derived_seed(&self, stream: u64) -> u64 {
        derive_seed(self.seed, stream)
    }

    /// A fresh generator on the `stream`-th decorrelated sub-stream.
    pub fn derived_rng(&self, stream: u64) -> Rng64 {
        Rng64::new(self.derived_seed(stream))
    }

    /// Thread count for sharded kernels (`0` = all available cores,
    /// default `1`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The operator cache of this run (shared across runs when built with
    /// [`with_operator_cache`](RunContext::with_operator_cache)).
    pub fn operators(&self) -> &Arc<OperatorCache> {
        &self.operators
    }

    /// The clique-model Laplacian of `hg` from this run's operator cache:
    /// built on first request (sharding the build over
    /// [`threads`](RunContext::threads)), shared by every later request —
    /// including other contexts holding the same cache.
    pub fn clique_laplacian(&self, hg: &Hypergraph) -> Arc<Laplacian> {
        self.operators.clique_laplacian(hg, self.threads)
    }

    /// The intersection-graph Laplacian of `hg` under `weighting` from
    /// this run's operator cache (see
    /// [`clique_laplacian`](RunContext::clique_laplacian)).
    pub fn intersection_laplacian(
        &self,
        hg: &Hypergraph,
        weighting: IgWeighting,
    ) -> Arc<Laplacian> {
        self.operators
            .intersection_laplacian(hg, weighting, self.threads)
    }

    /// The unweighted intersection-graph adjacency lists of `hg` from
    /// this run's operator cache — built on first request, shared by
    /// every later request (see
    /// [`clique_laplacian`](RunContext::clique_laplacian)).
    pub fn intersection_neighbors(&self, hg: &Hypergraph) -> Arc<Vec<Vec<u32>>> {
        self.operators.intersection_neighbors(hg)
    }

    /// `true` if an event sink is attached (lets stages skip formatting
    /// detail messages nobody will see).
    pub fn has_events(&self) -> bool {
        self.events.is_some()
    }

    /// Delivers `event` to the attached sink, if any.
    pub fn emit(&self, event: StageEvent<'_>) {
        if let Some(sink) = self.events {
            sink.on_event(&event);
        }
    }
}

impl Default for RunContext<'_> {
    fn default() -> Self {
        RunContext::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unlimited_meter_never_trips() {
        let ctx = RunContext::unlimited();
        assert!(ctx.meter().charge(1_000_000).is_ok());
    }

    #[test]
    fn budget_context_meters() {
        let ctx = RunContext::with_budget(&Budget::default().with_matvecs(2));
        assert!(ctx.meter().charge(1).is_ok());
        assert!(ctx.meter().charge(1).is_err());
    }

    #[test]
    fn borrowed_meter_shares_spend() {
        let meter = BudgetMeter::unlimited();
        let ctx = RunContext::with_meter(&meter);
        ctx.meter().charge(5).unwrap();
        assert_eq!(meter.matvecs_used(), 5);
    }

    #[test]
    fn rng_streams_deterministic_and_decorrelated() {
        let ctx = RunContext::unlimited().with_seed(42);
        assert_eq!(ctx.rng().next_u64(), Rng64::new(42).next_u64());
        assert_eq!(ctx.derived_seed(0), 42);
        assert_ne!(ctx.derived_rng(1).next_u64(), ctx.derived_rng(2).next_u64());
    }

    #[test]
    fn threads_default_and_builder() {
        assert_eq!(RunContext::unlimited().threads(), 1);
        assert_eq!(RunContext::unlimited().with_threads(8).threads(), 8);
    }

    #[test]
    fn shared_cache_reuses_operators_across_contexts() {
        let hg = np_netlist::hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        let cache = Arc::new(OperatorCache::new());
        let a = RunContext::unlimited()
            .with_operator_cache(Arc::clone(&cache))
            .clique_laplacian(&hg);
        let b = RunContext::unlimited()
            .with_operator_cache(Arc::clone(&cache))
            .with_threads(4)
            .clique_laplacian(&hg);
        assert!(Arc::ptr_eq(&a, &b), "both contexts hit the same slot");
        // a fresh default context owns its own cache
        let c = RunContext::unlimited().clique_laplacian(&hg);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn events_delivered_and_skippable() {
        let count = AtomicUsize::new(0);
        let sink = |_: &StageEvent<'_>| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let ctx = RunContext::unlimited().with_events(&sink);
        assert!(ctx.has_events());
        ctx.emit(StageEvent::Started { stage: "x" });
        ctx.emit(StageEvent::Detail {
            stage: "x",
            message: "detail",
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);

        let silent = RunContext::unlimited();
        assert!(!silent.has_events());
        silent.emit(StageEvent::Started { stage: "x" }); // no sink: no-op
    }
}
