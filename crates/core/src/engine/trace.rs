//! Structured tracing spans over the engine's [`StageEvent`] stream.
//!
//! [`StageEvent`]s are borrowed, synchronous callbacks — perfect for
//! streaming but useless for *after-the-fact* observability: a server
//! that wants to answer "what did the last thousand requests spend
//! their time on?" needs events turned into owned, timestamped records
//! it can keep. This module does exactly that conversion:
//!
//! * a [`Span`] is one completed unit of work — a request, a portfolio
//!   attempt or an engine stage — with its start offset, wall time and
//!   outcome, all relative to the collector's epoch so records are
//!   comparable across threads;
//! * a [`SpanRing`] is a bounded, thread-safe ring buffer of spans:
//!   constant memory forever, newest spans win, the number of overwritten
//!   spans is reported so a reader can tell "quiet" from "saturated";
//! * a [`SpanRecorder`] adapts a `&SpanRing` into an [`EventSink`], so
//!   any engine run can be traced by attaching it to the
//!   [`RunContext`](crate::engine::RunContext) — `Started`/`Finished`
//!   pairs become stage spans with no changes to any stage.
//!
//! Higher layers add their own span kinds: `np-runner` fans per-attempt
//! stage events into one ring (tagging spans with the attempt index),
//! and `np-serve` records one [`SpanKind::Request`] span per request and
//! exposes the ring over its `/trace` line.
//!
//! ```
//! use np_core::engine::trace::{SpanKind, SpanRecorder, SpanRing};
//! use np_core::engine::{RunContext, StageEvent};
//!
//! let ring = SpanRing::new(64);
//! let recorder = SpanRecorder::new(&ring);
//! let ctx = RunContext::unlimited().with_events(&recorder);
//! ctx.emit(StageEvent::Started { stage: "demo" });
//! ctx.emit(StageEvent::Finished {
//!     stage: "demo",
//!     outcome: Err(&np_core::PartitionError::Degenerate),
//! });
//! let spans = ring.snapshot();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].kind, SpanKind::Stage);
//! assert_eq!(spans[0].label, "demo");
//! assert_eq!(spans[0].ok, Some(false));
//! ```

use crate::engine::context::{EventSink, StageEvent};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a [`Span`] measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole request through a serving layer.
    Request,
    /// One portfolio attempt.
    Attempt,
    /// One engine stage.
    Stage,
}

impl SpanKind {
    /// Wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Attempt => "attempt",
            SpanKind::Stage => "stage",
        }
    }
}

/// One completed, owned, timestamped unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// What this span measured.
    pub kind: SpanKind,
    /// The stage name, attempt label or request id.
    pub label: String,
    /// Correlates spans of one request across layers; `0` when the
    /// recording layer has no request scope (plain engine runs).
    pub request: u64,
    /// The portfolio attempt this span ran in, if any.
    pub attempt: Option<usize>,
    /// Start offset from the ring's epoch.
    pub start: Duration,
    /// Wall time from start to finish.
    pub wall: Duration,
    /// `Some(true)` finished ok, `Some(false)` finished with an error,
    /// `None` for spans with no success notion (detail marks).
    pub ok: Option<bool>,
}

#[derive(Debug)]
struct RingInner {
    spans: VecDeque<Span>,
    dropped: u64,
    recorded: u64,
}

/// A bounded, thread-safe ring buffer of [`Span`]s.
///
/// Pushing is cheap (one short mutex hold, no allocation beyond the
/// span itself) and never blocks on readers; once full, the oldest span
/// is overwritten and counted in [`dropped`](SpanRing::dropped).
#[derive(Debug)]
pub struct SpanRing {
    capacity: usize,
    epoch: Instant,
    inner: Mutex<RingInner>,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (clamped to at least 1),
    /// with its epoch starting now.
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(RingInner {
                spans: VecDeque::new(),
                dropped: 0,
                recorded: 0,
            }),
        }
    }

    /// The moment `start` offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Maximum resident spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one span, evicting the oldest if the ring is full.
    pub fn record(&self, span: Span) {
        let mut inner = self.inner.lock().expect("span ring lock");
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
        inner.recorded += 1;
    }

    /// Records a span whose work ran from `started` until now.
    ///
    /// Convenience for callers that hold an `Instant` rather than
    /// offsets; `started` values before the epoch are clamped to it.
    pub fn record_since(
        &self,
        kind: SpanKind,
        label: impl Into<String>,
        request: u64,
        attempt: Option<usize>,
        started: Instant,
        ok: Option<bool>,
    ) {
        let start = started.saturating_duration_since(self.epoch);
        self.record(Span {
            kind,
            label: label.into(),
            request,
            attempt,
            start,
            wall: started.elapsed(),
            ok,
        });
    }

    /// The resident spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let inner = self.inner.lock().expect("span ring lock");
        inner.spans.iter().cloned().collect()
    }

    /// Total spans ever recorded (monotonic).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("span ring lock").recorded
    }

    /// Spans overwritten because the ring was full (monotonic).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span ring lock").dropped
    }
}

/// Adapts a [`SpanRing`] into an [`EventSink`]: `Started` opens a stage,
/// the matching `Finished` closes it and records a [`SpanKind::Stage`]
/// span. Nested stages (a `Pipeline` inside a `FallbackChain`) are
/// handled as a stack — the innermost open stage closes first. `Detail`
/// events are ignored (they carry no duration).
///
/// One recorder serves one logical execution stream; give concurrent
/// streams (portfolio attempts) their own recorder each, all pointing at
/// the same ring — that is exactly what `np-runner`'s fan-in does.
#[derive(Debug)]
pub struct SpanRecorder<'a> {
    ring: &'a SpanRing,
    request: u64,
    attempt: Option<usize>,
    open: Mutex<Vec<(String, Instant)>>,
}

impl<'a> SpanRecorder<'a> {
    /// A recorder writing stage spans into `ring` with no request or
    /// attempt tag (plain engine runs).
    pub fn new(ring: &'a SpanRing) -> Self {
        SpanRecorder {
            ring,
            request: 0,
            attempt: None,
            open: Mutex::new(Vec::new()),
        }
    }

    /// A recorder tagging every span with a request sequence number and
    /// (optionally) a portfolio attempt index.
    pub fn tagged(ring: &'a SpanRing, request: u64, attempt: Option<usize>) -> Self {
        SpanRecorder {
            ring,
            request,
            attempt,
            open: Mutex::new(Vec::new()),
        }
    }

    /// Stages opened by a `Started` with no `Finished` yet (a panic can
    /// leave stages open; they are simply never recorded).
    pub fn open_stages(&self) -> usize {
        self.open.lock().expect("recorder lock").len()
    }
}

impl EventSink for SpanRecorder<'_> {
    fn on_event(&self, event: &StageEvent<'_>) {
        match event {
            StageEvent::Started { stage } => {
                self.open
                    .lock()
                    .expect("recorder lock")
                    .push((stage.to_string(), Instant::now()));
            }
            StageEvent::Finished { stage, outcome } => {
                let mut open = self.open.lock().expect("recorder lock");
                // close the innermost matching open stage; an unmatched
                // Finished (shouldn't happen, but events are advisory)
                // records a zero-length span rather than panicking
                let started = match open.iter().rposition(|(name, _)| name == stage) {
                    Some(i) => open.remove(i).1,
                    None => Instant::now(),
                };
                drop(open);
                self.ring.record_since(
                    SpanKind::Stage,
                    *stage,
                    self.request,
                    self.attempt,
                    started,
                    Some(outcome.is_ok()),
                );
            }
            StageEvent::Detail { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionError;

    fn finish<'a>(stage: &'a str, err: &'a PartitionError) -> StageEvent<'a> {
        StageEvent::Finished {
            stage,
            outcome: Err(err),
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = SpanRing::new(3);
        for i in 0..5 {
            ring.record(Span {
                kind: SpanKind::Stage,
                label: format!("s{i}"),
                request: 0,
                attempt: None,
                start: Duration::from_micros(i),
                wall: Duration::ZERO,
                ok: Some(true),
            });
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].label, "s2", "oldest spans evicted first");
        assert_eq!(spans[2].label, "s4");
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn zero_capacity_clamped() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record_since(SpanKind::Request, "r", 1, None, Instant::now(), None);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn recorder_pairs_started_with_finished() {
        let ring = SpanRing::new(16);
        let rec = SpanRecorder::tagged(&ring, 7, Some(2));
        let err = PartitionError::Degenerate;
        rec.on_event(&StageEvent::Started { stage: "outer" });
        rec.on_event(&StageEvent::Started { stage: "inner" });
        rec.on_event(&StageEvent::Detail {
            stage: "inner",
            message: "ignored",
        });
        rec.on_event(&finish("inner", &err));
        rec.on_event(&finish("outer", &err));
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2, "details record no span");
        assert_eq!(spans[0].label, "inner", "innermost closes first");
        assert_eq!(spans[1].label, "outer");
        for s in &spans {
            assert_eq!(s.request, 7);
            assert_eq!(s.attempt, Some(2));
            assert_eq!(s.ok, Some(false));
            assert!(s.wall <= s.start + s.wall, "offsets are sane");
        }
        assert_eq!(rec.open_stages(), 0);
    }

    #[test]
    fn unmatched_finished_records_zero_length_span() {
        let ring = SpanRing::new(4);
        let rec = SpanRecorder::new(&ring);
        let err = PartitionError::Degenerate;
        rec.on_event(&finish("ghost", &err));
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].wall < Duration::from_millis(50));
    }

    #[test]
    fn panic_leaves_stage_open_not_recorded() {
        let ring = SpanRing::new(4);
        let rec = SpanRecorder::new(&ring);
        rec.on_event(&StageEvent::Started { stage: "doomed" });
        // no Finished ever arrives (the stage panicked)
        assert_eq!(ring.snapshot().len(), 0);
        assert_eq!(rec.open_stages(), 1);
    }

    #[test]
    fn record_since_clamps_pre_epoch_starts() {
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let ring = SpanRing::new(4);
        ring.record_since(SpanKind::Request, "early", 0, None, before, Some(true));
        let spans = ring.snapshot();
        assert_eq!(spans[0].start, Duration::ZERO, "clamped to the epoch");
        assert!(spans[0].wall >= Duration::from_millis(1));
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_under_capacity() {
        let ring = SpanRing::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.record_since(
                            SpanKind::Stage,
                            format!("t{t}-{i}"),
                            t,
                            Some(i),
                            Instant::now(),
                            Some(true),
                        );
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 800);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.snapshot().len(), 800);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SpanKind::Request.name(), "request");
        assert_eq!(SpanKind::Attempt.name(), "attempt");
        assert_eq!(SpanKind::Stage.name(), "stage");
    }
}
