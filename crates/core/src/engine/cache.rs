//! A build-once cache for the spectral operators of one hypergraph.

use crate::models::clique::{bound_preserving_adjacency_threaded, clique_adjacency_threaded};
use crate::models::{intersection_adjacency_threaded, intersection_neighbors, IgWeighting};
use np_netlist::Hypergraph;
use np_sparse::Laplacian;
use std::sync::{Arc, OnceLock};

/// Lazily-built, shareable Laplacians of one hypergraph's net models.
///
/// Every spectral stage needs a Laplacian of the netlist — the clique
/// model for EIG1, the intersection graph for IG-Vote/IG-Match — and
/// these operators depend only on the hypergraph, not on seeds, budgets
/// or orderings. A multi-start portfolio therefore rebuilds the exact
/// same matrices once per attempt unless something shares them; this
/// cache is that something. `np-runner` puts one `Arc<OperatorCache>`
/// into every attempt's [`RunContext`](crate::engine::RunContext), so the
/// first attempt to need an operator builds it (with the context's
/// thread count sharding the build) and every later attempt gets the
/// same `Arc` back for free.
///
/// Each slot is a [`OnceLock`], so concurrent first requests are safe:
/// losers of the initialization race simply receive the winner's
/// operator. Results are unaffected by sharing because the builders are
/// deterministic functions of the hypergraph (and bit-identical for
/// every thread count).
///
/// A cache describes **one** hypergraph. It does not store the
/// hypergraph itself — callers pass it in — but the accessors
/// debug-assert that the cached operator's dimension matches the
/// hypergraph they are handed, which catches cross-netlist reuse.
///
/// # Example
///
/// ```
/// use np_core::engine::OperatorCache;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
/// let cache = OperatorCache::new();
/// let a = cache.clique_laplacian(&hg, 1);
/// let b = cache.clique_laplacian(&hg, 8); // cache hit: same operator
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
#[derive(Debug, Default)]
pub struct OperatorCache {
    clique: OnceLock<Arc<Laplacian>>,
    bound_preserving: OnceLock<Arc<Laplacian>>,
    intersection: [OnceLock<Arc<Laplacian>>; IgWeighting::ALL.len()],
    neighbors: OnceLock<Arc<Vec<Vec<u32>>>>,
}

fn weighting_slot(weighting: IgWeighting) -> usize {
    IgWeighting::ALL
        .iter()
        .position(|&w| w == weighting)
        .expect("IgWeighting::ALL covers every variant")
}

impl OperatorCache {
    /// An empty cache; operators are built on first request.
    pub fn new() -> Self {
        OperatorCache::default()
    }

    /// The clique-model Laplacian of `hg`, built on first call (sharding
    /// the build over `threads` threads) and shared thereafter.
    pub fn clique_laplacian(&self, hg: &Hypergraph, threads: usize) -> Arc<Laplacian> {
        let q = self
            .clique
            .get_or_init(|| {
                Arc::new(Laplacian::from_adjacency(clique_adjacency_threaded(
                    hg, threads,
                )))
            })
            .clone();
        debug_assert_eq!(
            np_sparse::LinearOperator::dim(&*q),
            hg.num_modules(),
            "OperatorCache reused across different hypergraphs"
        );
        q
    }

    /// The bound-preserving clique Laplacian of `hg` (see
    /// [`bound_preserving_laplacian`](crate::models::clique::bound_preserving_laplacian)),
    /// built on first call and shared thereafter.
    pub fn bound_preserving_laplacian(&self, hg: &Hypergraph, threads: usize) -> Arc<Laplacian> {
        let q = self
            .bound_preserving
            .get_or_init(|| {
                Arc::new(Laplacian::from_adjacency(
                    bound_preserving_adjacency_threaded(hg, threads),
                ))
            })
            .clone();
        debug_assert_eq!(
            np_sparse::LinearOperator::dim(&*q),
            hg.num_modules(),
            "OperatorCache reused across different hypergraphs"
        );
        q
    }

    /// The intersection-graph Laplacian of `hg` under `weighting` (one
    /// slot per [`IgWeighting`] variant), built on first call and shared
    /// thereafter.
    pub fn intersection_laplacian(
        &self,
        hg: &Hypergraph,
        weighting: IgWeighting,
        threads: usize,
    ) -> Arc<Laplacian> {
        let q = self.intersection[weighting_slot(weighting)]
            .get_or_init(|| {
                Arc::new(Laplacian::from_adjacency(intersection_adjacency_threaded(
                    hg, weighting, threads,
                )))
            })
            .clone();
        debug_assert_eq!(
            np_sparse::LinearOperator::dim(&*q),
            hg.num_nets(),
            "OperatorCache reused across different hypergraphs"
        );
        q
    }

    /// The unweighted intersection-graph adjacency lists of `hg` — the
    /// conflict-graph structure every IG-Match sweep walks — built on
    /// first call and shared thereafter, so a portfolio of IG-Match
    /// attempts stops rebuilding the same lists per attempt.
    pub fn intersection_neighbors(&self, hg: &Hypergraph) -> Arc<Vec<Vec<u32>>> {
        let q = self
            .neighbors
            .get_or_init(|| Arc::new(intersection_neighbors(hg)))
            .clone();
        debug_assert_eq!(
            q.len(),
            hg.num_nets(),
            "OperatorCache reused across different hypergraphs"
        );
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{clique_laplacian, intersection_laplacian};
    use np_netlist::hypergraph_from_nets;
    use np_sparse::LinearOperator;

    fn hg() -> np_netlist::Hypergraph {
        hypergraph_from_nets(5, &[vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]])
    }

    #[test]
    fn cache_returns_same_arc() {
        let hg = hg();
        let cache = OperatorCache::new();
        let a = cache.clique_laplacian(&hg, 1);
        let b = cache.clique_laplacian(&hg, 4);
        assert!(Arc::ptr_eq(&a, &b));
        for w in IgWeighting::ALL {
            let x = cache.intersection_laplacian(&hg, w, 2);
            let y = cache.intersection_laplacian(&hg, w, 1);
            assert!(Arc::ptr_eq(&x, &y), "{w:?}");
        }
    }

    #[test]
    fn cached_operators_match_direct_builds() {
        let hg = hg();
        let cache = OperatorCache::new();
        for threads in [1usize, 2, 8] {
            let cache = OperatorCache::new();
            let q = cache.clique_laplacian(&hg, threads);
            assert_eq!(q.adjacency(), clique_laplacian(&hg).adjacency());
        }
        for w in IgWeighting::ALL {
            let q = cache.intersection_laplacian(&hg, w, 2);
            assert_eq!(q.adjacency(), intersection_laplacian(&hg, w).adjacency());
        }
    }

    #[test]
    fn neighbors_cached_and_match_direct_build() {
        let hg = hg();
        let cache = OperatorCache::new();
        let a = cache.intersection_neighbors(&hg);
        let b = cache.intersection_neighbors(&hg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, crate::models::intersection_neighbors(&hg));
    }

    #[test]
    fn weighting_slots_are_distinct() {
        let hg = hg();
        let cache = OperatorCache::new();
        let paper = cache.intersection_laplacian(&hg, IgWeighting::Paper, 1);
        let uniform = cache.intersection_laplacian(&hg, IgWeighting::Uniform, 1);
        assert!(!Arc::ptr_eq(&paper, &uniform));
        assert_eq!(paper.dim(), uniform.dim());
    }

    #[test]
    fn concurrent_first_use_converges_to_one_operator() {
        let hg = hg();
        let cache = OperatorCache::new();
        let got: Vec<Arc<Laplacian>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.clique_laplacian(&hg, 2)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for q in &got[1..] {
            assert!(Arc::ptr_eq(&got[0], q));
        }
    }
}
