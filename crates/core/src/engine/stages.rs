//! Stage adapters for every partitioner in the workspace.
//!
//! Each adapter is a thin struct wrapping the algorithm's option struct
//! and implementing [`Partitioner`] (or [`Stage`] for transformers), so
//! CLI flags, config files or library callers can assemble flows from
//! uniform parts. Seeds that live in the option structs (Lanczos, RCut,
//! KL) stay authoritative, which keeps stage runs bit-identical to the
//! corresponding free functions.

use super::context::{RunContext, StageEvent};
use super::stage::{Partitioner, Stage};
use crate::eig1::Eig1Options;
use crate::igmatch::IgMatchOptions;
use crate::igvote::IgVoteOptions;
use crate::models::clique_adjacency_threaded;
use crate::{PartitionError, PartitionResult};
use np_baselines::{
    fm_bisect_metered, kl_bisect_metered, rcut_metered, FmOptions, KlOptions, RcutOptions,
};
use np_netlist::{Bipartition, Hypergraph, ModuleId, Side};

/// The Hagen–Kahng EIG1 baseline as a stage: spectral module ordering on
/// the clique model plus the best-prefix ratio-cut sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Eig1Stage {
    /// Algorithm options.
    pub opts: Eig1Options,
}

impl Eig1Stage {
    /// A stage with the given options.
    pub fn new(opts: Eig1Options) -> Self {
        Eig1Stage { opts }
    }
}

impl Partitioner for Eig1Stage {
    fn name(&self) -> &'static str {
        "EIG1"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        crate::eig1::eig1_ctx(hg, &self.opts, ctx)
    }
}

/// The IG-Vote heuristic as a stage: spectral net ordering plus threshold
/// voting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IgVoteStage {
    /// Algorithm options.
    pub opts: IgVoteOptions,
}

impl IgVoteStage {
    /// A stage with the given options.
    pub fn new(opts: IgVoteOptions) -> Self {
        IgVoteStage { opts }
    }
}

impl Default for IgVoteStage {
    fn default() -> Self {
        IgVoteStage::new(IgVoteOptions::default())
    }
}

impl Partitioner for IgVoteStage {
    fn name(&self) -> &'static str {
        "IG-Vote"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        crate::igvote::ig_vote_ctx(hg, &self.opts, ctx)
    }
}

/// The paper's IG-Match algorithm as a stage.
///
/// The Phase I matching bound at the winning split is reported through
/// [`StageEvent::Detail`], so instrumented runs still see the
/// `cut ≤ |maximum matching|` certificate the free function returns in
/// [`IgMatchOutcome`](crate::IgMatchOutcome).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IgMatchStage {
    /// Algorithm options.
    pub opts: IgMatchOptions,
}

impl IgMatchStage {
    /// A stage with the given options.
    pub fn new(opts: IgMatchOptions) -> Self {
        IgMatchStage { opts }
    }
}

impl Partitioner for IgMatchStage {
    fn name(&self) -> &'static str {
        "IG-Match"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let out = crate::igmatch::ig_match_ctx(hg, &self.opts, ctx)?;
        if ctx.has_events() {
            let message = format!(
                "cut {} within matching bound {} ({} forced losers)",
                out.result.stats.cut_nets, out.matching_size, out.loser_count
            );
            ctx.emit(StageEvent::Detail {
                stage: Partitioner::name(self),
                message: &message,
            });
        }
        Ok(out.result)
    }
}

/// Fiduccia–Mattheyses from the deterministic "first half left" seed
/// partition, as a stage. Purely combinatorial — no eigensolve — so it
/// serves as the last line of defense in fallback chains.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FmStage {
    /// Algorithm options.
    pub opts: FmOptions,
}

impl FmStage {
    /// A stage with the given options.
    pub fn new(opts: FmOptions) -> Self {
        FmStage { opts }
    }
}

impl Partitioner for FmStage {
    fn name(&self) -> &'static str {
        "FM"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let n = hg.num_modules();
        if n < 2 {
            return Err(PartitionError::TooSmall {
                modules: n,
                nets: hg.num_nets(),
            });
        }
        let start = Bipartition::from_left_set(n, (0..n as u32 / 2).map(ModuleId));
        let improved = fm_bisect_metered(hg, &start, &self.opts, ctx.meter())?;
        let stats = improved.partition.cut_stats(hg);
        if stats.left == 0 || stats.right == 0 {
            return Err(PartitionError::Degenerate);
        }
        Ok(PartitionResult::evaluate(
            hg,
            improved.partition,
            "FM",
            None,
        ))
    }
}

/// The RCut1.0 stand-in (ratio-cut shifting/group-swapping with random
/// restarts) as a stage. The restart seed comes from
/// [`RcutOptions::seed`], keeping stage runs bit-identical to
/// [`rcut`](np_baselines::rcut()).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RcutStage {
    /// Algorithm options.
    pub opts: RcutOptions,
}

impl RcutStage {
    /// A stage with the given options.
    pub fn new(opts: RcutOptions) -> Self {
        RcutStage { opts }
    }
}

impl Default for RcutStage {
    fn default() -> Self {
        RcutStage::new(RcutOptions::default())
    }
}

impl Partitioner for RcutStage {
    fn name(&self) -> &'static str {
        "RCut"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        if hg.num_modules() < 2 {
            return Err(PartitionError::TooSmall {
                modules: hg.num_modules(),
                nets: hg.num_nets(),
            });
        }
        let r = rcut_metered(hg, &self.opts, ctx.meter())?;
        Ok(PartitionResult::evaluate(hg, r.partition, "RCut", None))
    }
}

/// Kernighan–Lin bisection on the clique model of the netlist, as a
/// stage. The restart seed comes from [`KlOptions::seed`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KlStage {
    /// Algorithm options.
    pub opts: KlOptions,
}

impl KlStage {
    /// A stage with the given options.
    pub fn new(opts: KlOptions) -> Self {
        KlStage { opts }
    }
}

impl Default for KlStage {
    fn default() -> Self {
        KlStage::new(KlOptions::default())
    }
}

impl Partitioner for KlStage {
    fn name(&self) -> &'static str {
        "KL"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        if hg.num_modules() < 2 {
            return Err(PartitionError::TooSmall {
                modules: hg.num_modules(),
                nets: hg.num_nets(),
            });
        }
        let graph = clique_adjacency_threaded(hg, ctx.threads());
        let r = kl_bisect_metered(&graph, &self.opts, ctx.meter())?;
        let sides = r
            .left
            .iter()
            .map(|&l| if l { Side::Left } else { Side::Right })
            .collect();
        let partition = Bipartition::from_sides(sides);
        Ok(PartitionResult::evaluate(hg, partition, "KL", None))
    }
}

/// The whole resilient fallback chain
/// ([`robust_partition_ctx`](crate::robust_partition_ctx)) as a single
/// stage, so portfolios and pipelines can treat "IG-Match with every
/// safety net" as one attempt. The chain's [`Diagnostics`](crate::Diagnostics)
/// line is reported through [`StageEvent::Detail`].
#[derive(Clone, Debug, Default)]
pub struct RobustStage {
    /// Options for the underlying fallback chain.
    pub opts: crate::RobustOptions,
}

impl RobustStage {
    /// A stage with the given options.
    pub fn new(opts: crate::RobustOptions) -> Self {
        RobustStage { opts }
    }
}

impl Partitioner for RobustStage {
    fn name(&self) -> &'static str {
        "robust"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        match crate::robust_partition_ctx(hg, &self.opts, ctx) {
            Ok(outcome) => {
                if ctx.has_events() {
                    let message = outcome.diagnostics.to_string();
                    ctx.emit(StageEvent::Detail {
                        stage: Partitioner::name(self),
                        message: &message,
                    });
                }
                Ok(outcome.result)
            }
            Err(failure) => Err(failure.error),
        }
    }
}

/// Ratio-objective FM refinement of an upstream partition — the
/// "standard iterative techniques" post-processing of paper §5. A
/// transformer: it requires pipeline input and preserves the upstream
/// `split_rank`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioRefineStage {
    /// Upper bound on refinement passes.
    pub max_passes: usize,
    /// Algorithm label stamped on the refined result (e.g.
    /// `"IG-Match+FM"`).
    pub algorithm: &'static str,
}

impl RatioRefineStage {
    /// A refinement stage with the given pass bound and result label.
    pub fn new(max_passes: usize, algorithm: &'static str) -> Self {
        RatioRefineStage {
            max_passes,
            algorithm,
        }
    }
}

impl Stage for RatioRefineStage {
    fn name(&self) -> &'static str {
        "ratio-refine"
    }

    fn run(
        &self,
        hg: &Hypergraph,
        input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let prev = input.ok_or(PartitionError::InvalidInput {
            reason: "ratio refinement needs an upstream partition",
        })?;
        let (partition, stats) = np_baselines::rcut::refine_ratio_cut_metered(
            hg,
            &prev.partition,
            self.max_passes,
            ctx.meter(),
        )?;
        Ok(PartitionResult {
            partition,
            stats,
            algorithm: self.algorithm,
            split_rank: prev.split_rank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::stage::run_stage;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn every_producer_finds_the_bridge() {
        let hg = two_triangles();
        let ctx = RunContext::unlimited();
        let stages: Vec<Box<dyn Stage>> = vec![
            Box::new(Eig1Stage::default()),
            Box::new(IgVoteStage::default()),
            Box::new(IgMatchStage::default()),
            Box::new(RcutStage::default()),
            Box::new(KlStage::default()),
        ];
        for stage in stages {
            let r = run_stage(stage.as_ref(), &hg, None, &ctx).unwrap();
            assert_eq!(r.stats.cut_nets, 1, "{}", stage.name());
            assert_eq!(r.stats, r.partition.cut_stats(&hg), "{}", stage.name());
        }
    }

    #[test]
    fn fm_stage_improves_the_seed() {
        let hg = two_triangles();
        let r = FmStage::default()
            .partition(&hg, &RunContext::unlimited())
            .unwrap();
        assert!(r.stats.left > 0 && r.stats.right > 0);
        assert_eq!(r.algorithm, "FM");
    }

    #[test]
    fn producers_reject_tiny_instances() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        let ctx = RunContext::unlimited();
        for stage in [
            Box::new(FmStage::default()) as Box<dyn Stage>,
            Box::new(RcutStage::default()),
            Box::new(KlStage::default()),
        ] {
            assert!(
                matches!(
                    stage.run(&hg, None, &ctx),
                    Err(PartitionError::TooSmall { .. })
                ),
                "{}",
                stage.name()
            );
        }
    }

    #[test]
    fn refine_without_input_rejected() {
        let hg = two_triangles();
        let stage = RatioRefineStage::new(10, "refined");
        assert!(matches!(
            stage.run(&hg, None, &RunContext::unlimited()),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn refine_preserves_label_and_rank() {
        let hg = two_triangles();
        let ctx = RunContext::unlimited();
        let first = IgMatchStage::default().partition(&hg, &ctx).unwrap();
        let rank = first.split_rank;
        let refined = RatioRefineStage::new(10, "IG-Match+FM")
            .run(&hg, Some(first), &ctx)
            .unwrap();
        assert_eq!(refined.algorithm, "IG-Match+FM");
        assert_eq!(refined.split_rank, rank);
    }

    #[test]
    fn ig_match_stage_emits_matching_bound_detail() {
        use std::sync::Mutex;
        let hg = two_triangles();
        let details = Mutex::new(Vec::<String>::new());
        let sink = |e: &StageEvent<'_>| {
            if let StageEvent::Detail { message, .. } = e {
                details.lock().unwrap().push(message.to_string());
            }
        };
        let ctx = RunContext::unlimited().with_events(&sink);
        IgMatchStage::default().partition(&hg, &ctx).unwrap();
        let details = details.into_inner().unwrap();
        assert_eq!(details.len(), 1);
        assert!(details[0].contains("matching bound"), "{}", details[0]);
    }

    #[test]
    fn stage_budgets_enforced() {
        use np_sparse::Budget;
        let hg = two_triangles();
        let budget = Budget::default().with_matvecs(1);
        for stage in [
            Box::new(Eig1Stage::default()) as Box<dyn Stage>,
            Box::new(IgMatchStage::default()),
            Box::new(RcutStage::default()),
            Box::new(KlStage::default()),
        ] {
            let ctx = RunContext::with_budget(&budget);
            assert!(
                matches!(stage.run(&hg, None, &ctx), Err(PartitionError::Budget(_))),
                "{}",
                stage.name()
            );
        }
    }
}
