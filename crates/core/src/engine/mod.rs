//! A composable stage/engine layer over every partitioner in the
//! workspace.
//!
//! The engine decomposes a partitioning run into three orthogonal parts:
//!
//! * **[`RunContext`]** — the shared execution state: one
//!   [`BudgetMeter`](np_sparse::BudgetMeter) every stage charges, a base
//!   PRNG seed with golden-ratio-strided sub-streams, and an optional
//!   [`EventSink`] for instrumentation.
//! * **[`Stage`]** — a unit of work that consumes a
//!   [`Hypergraph`](np_netlist::Hypergraph) (plus, for transformers, an
//!   upstream [`PartitionResult`](crate::PartitionResult)) and produces a
//!   new result. Pure producers implement the simpler [`Partitioner`]
//!   trait and get `Stage` for free.
//! * **Combinators** — [`Pipeline`] runs stages sequentially, threading
//!   each output into the next stage's input; [`FallbackChain`] tries
//!   labelled alternatives until one succeeds, aborting early on fatal
//!   errors ([`default_fatal`]).
//!
//! The concrete adapters in [`stages`] wrap EIG1, IG-Vote, IG-Match and
//! the FM/KL/RCut baselines, so entire flows — the robust fallback chain
//! of [`robust_partition`](crate::robust_partition), the IG-Match+FM
//! hybrid — are declarative data rather than bespoke control flow.
//!
//! ```
//! use np_core::engine::stages::{IgMatchStage, RatioRefineStage};
//! use np_core::engine::{Pipeline, RunContext, Stage};
//! use np_netlist::hypergraph_from_nets;
//!
//! let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3], vec![1, 2]]);
//! let flow = Pipeline::named("IG-Match+refine")
//!     .then(IgMatchStage::default())
//!     .then(RatioRefineStage::new(10, "IG-Match+FM"));
//! let result = flow.run(&hg, None, &RunContext::unlimited()).unwrap();
//! assert_eq!(result.algorithm, "IG-Match+FM");
//! ```

pub mod cache;
pub mod context;
pub mod stage;
pub mod stages;
pub mod trace;

pub use cache::OperatorCache;
pub use context::{EventSink, RunContext, StageEvent, DEFAULT_SEED};
pub use stage::{
    default_fatal, run_stage, BoxedStage, ChainAttempt, ChainFailure, ChainOutcome, FallbackChain,
    Partitioner, Pipeline, Stage,
};
pub use trace::{Span, SpanKind, SpanRecorder, SpanRing};
