//! Resilient partitioning: a fallback chain with budgets and
//! deterministic fault injection.
//!
//! The plain entry points ([`ig_match`](crate::ig_match),
//! [`eig1`](crate::eig1()), …) propagate the first failure they hit. This
//! module makes partitioning *total*: [`robust_partition`] runs a chain
//! of progressively more conservative strategies and returns either a
//! [`PartitionResult`] or a structured [`RobustFailure`] — never a panic,
//! and (given a wall-clock [`Budget`]) never a hang. The chain is
//!
//! 1. **IG-Match** on the intersection model — the paper's algorithm,
//!    best quality (§3);
//! 2. **reseeded Lanczos restarts** — the same algorithm with fresh
//!    eigensolver seeds, which recovers from unlucky start vectors;
//! 3. **dense eigensolve** — the spectral ordering computed by the dense
//!    Jacobi solver instead of Lanczos, immune to convergence stagnation;
//! 4. **clique-model EIG1** — the Hagen–Kahng baseline on the module
//!    graph, which sidesteps a pathological intersection graph entirely;
//! 5. **FM baseline** — purely combinatorial Fiduccia–Mattheyses from a
//!    deterministic seed partition, requiring no eigensolve at all.
//!
//! Every attempt is recorded in [`Diagnostics`], so callers can see which
//! stage produced the answer and why earlier stages failed. Budget
//! exhaustion ([`PartitionError::Budget`]) and structurally hopeless
//! inputs ([`PartitionError::TooSmall`]) abort the chain immediately:
//! later stages share the same spent budget / tiny input and would fail
//! identically.
//!
//! With the `fault-inject` feature, a [`FaultPlan`] deterministically
//! forces failures at chosen stages so every fallback link can be tested.

use crate::eig1::sweep_module_ordering_metered;
use crate::igmatch::ig_match_with_ordering_metered;
use crate::models::{clique_laplacian, intersection_laplacian};
use crate::ordering::order_by_component;
use crate::{IgMatchOptions, PartitionError, PartitionResult};
use np_baselines::{fm_bisect_metered, FmOptions};
use np_eigen::{smallest_deflated_metered, EigenError, EigenPair, LanczosOptions};
use np_netlist::{Bipartition, Hypergraph, ModuleId, NetId};
use np_sparse::{
    Budget, BudgetExceeded, BudgetMeter, BudgetResource, Laplacian, LinearOperator,
};
use std::fmt;
use std::time::Duration;

/// One link of the fallback chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackStage {
    /// IG-Match with the caller's eigensolver options.
    IgMatch,
    /// IG-Match retried with a reseeded Lanczos start vector.
    ReseededLanczos,
    /// IG-Match with the spectral ordering computed densely.
    DenseEigensolve,
    /// EIG1 on the clique model.
    CliqueEig1,
    /// Fiduccia–Mattheyses from a deterministic seed partition.
    FmBaseline,
}

impl FallbackStage {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            FallbackStage::IgMatch => "IG-Match",
            FallbackStage::ReseededLanczos => "reseeded Lanczos",
            FallbackStage::DenseEigensolve => "dense eigensolve",
            FallbackStage::CliqueEig1 => "clique EIG1",
            FallbackStage::FmBaseline => "FM baseline",
        }
    }
}

impl fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The failure a [`FaultPlan`] forces at a stage (test-only machinery;
/// plans only take effect when the `fault-inject` feature is enabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage fails up front with
    /// [`EigenError::NoConvergence`], as if the eigensolve stagnated.
    ForceNoConvergence,
    /// The stage's operator is wrapped to emit NaN, exercising the
    /// [`EigenError::NonFinite`] detection path. At the (eigensolve-free)
    /// FM stage this short-circuits with `NonFinite` directly.
    PoisonOperator,
    /// The stage fails with [`PartitionError::Budget`] carrying the real
    /// spend so far, as if the budget ran out on entry.
    ExhaustBudget,
}

/// Deterministic fault plan: which [`FaultKind`] to force at which
/// stage. Only consulted when the `fault-inject` feature is enabled;
/// release builds never look at it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(FallbackStage, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `stage` (builder style). A fault at
    /// [`FallbackStage::ReseededLanczos`] fires on every reseed attempt.
    #[must_use]
    pub fn with(mut self, stage: FallbackStage, kind: FaultKind) -> Self {
        self.faults.push((stage, kind));
        self
    }

    /// The fault registered for `stage`, if any (first match wins).
    pub fn fault_at(&self, stage: FallbackStage) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, k)| k)
    }
}

/// Options for [`robust_partition`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustOptions {
    /// Options for the primary IG-Match stages (weighting, eigensolver,
    /// free-module refinement).
    pub ig_match: IgMatchOptions,
    /// Resource budget for the *whole* chain (all stages share one
    /// meter). Unlimited by default.
    pub budget: Budget,
    /// Number of reseeded-Lanczos retries before escalating to the dense
    /// eigensolve.
    pub reseed_attempts: usize,
    /// Options for the final FM stage.
    pub fm: FmOptions,
    /// Deterministic faults to force (testing the chain itself).
    #[cfg(feature = "fault-inject")]
    pub faults: FaultPlan,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            ig_match: IgMatchOptions::default(),
            budget: Budget::UNLIMITED,
            reseed_attempts: 2,
            fm: FmOptions::default(),
            #[cfg(feature = "fault-inject")]
            faults: FaultPlan::default(),
        }
    }
}

/// Record of one stage execution.
#[derive(Clone, Debug, PartialEq)]
pub struct StageAttempt {
    /// Which stage ran.
    pub stage: FallbackStage,
    /// `None` if the stage produced the final result, otherwise the error
    /// that made the chain move on (or abort).
    pub error: Option<PartitionError>,
}

/// What happened across the whole chain: every attempt in order, the
/// winning stage (if any) and the total resource spend.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostics {
    /// Every stage execution, in chain order. The last entry is the
    /// winning stage on success.
    pub attempts: Vec<StageAttempt>,
    /// The stage that produced the result; `None` if the chain failed.
    pub winning_stage: Option<FallbackStage>,
    /// Matvec-equivalents charged across all stages.
    pub matvecs: u64,
    /// Wall-clock time for the whole chain.
    pub elapsed: Duration,
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.winning_stage {
            Some(s) => write!(f, "solved by {s} after {} attempt(s)", self.attempts.len())?,
            None => write!(f, "no stage succeeded in {} attempt(s)", self.attempts.len())?,
        }
        write!(f, ", {} matvecs, {:.1?} elapsed", self.matvecs, self.elapsed)
    }
}

/// Successful outcome of [`robust_partition`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustOutcome {
    /// The partition produced by the winning stage.
    pub result: PartitionResult,
    /// The chain's execution record.
    pub diagnostics: Diagnostics,
}

/// Failure of the whole chain, with the execution record attached.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustFailure {
    /// The error that ended the chain: the aborting error for budget
    /// exhaustion / hopeless inputs, otherwise the last stage's error.
    pub error: PartitionError,
    /// The chain's execution record (partial progress included).
    pub diagnostics: Diagnostics,
}

impl fmt::Display for RobustFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partitioning failed: {} ({})", self.error, self.diagnostics)
    }
}

impl std::error::Error for RobustFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Runs the fallback chain until a stage produces a partition.
///
/// The stages and escalation policy are described in the
/// [module docs](self). All stages share one [`BudgetMeter`] derived from
/// `opts.budget`; charging is cooperative at per-iteration granularity,
/// so a tripped budget surfaces within one iteration's work of the
/// requested limits.
///
/// # Errors
///
/// [`RobustFailure`] carrying the decisive [`PartitionError`] and the
/// full [`Diagnostics`]. The chain aborts early (without trying later
/// stages) on [`PartitionError::Budget`] and
/// [`PartitionError::TooSmall`]; anything else escalates to the next
/// stage.
///
/// # Example
///
/// ```
/// use np_core::robust::{robust_partition, FallbackStage, RobustOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let out = robust_partition(&hg, &RobustOptions::default()).unwrap();
/// assert_eq!(out.result.stats.cut_nets, 1);
/// assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::IgMatch));
/// ```
pub fn robust_partition(
    hg: &Hypergraph,
    opts: &RobustOptions,
) -> Result<RobustOutcome, RobustFailure> {
    let meter = BudgetMeter::new(&opts.budget);
    let fault_for = |stage: FallbackStage| -> Option<FaultKind> {
        #[cfg(feature = "fault-inject")]
        {
            opts.faults.fault_at(stage)
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = stage;
            None
        }
    };

    let base = opts.ig_match.lanczos;
    let weighting = opts.ig_match.weighting;
    let refine = opts.ig_match.refine_free_modules;

    // (stage, eigensolver options) for the three spectral IG-Match links
    let mut spectral: Vec<(FallbackStage, LanczosOptions)> =
        vec![(FallbackStage::IgMatch, base)];
    for attempt in 0..opts.reseed_attempts {
        let mut lanczos = base;
        lanczos.seed = base
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1));
        spectral.push((FallbackStage::ReseededLanczos, lanczos));
    }
    let mut dense = base;
    dense.dense_cutoff = usize::MAX;
    spectral.push((FallbackStage::DenseEigensolve, dense));

    type StageFn<'a> = Box<dyn FnOnce() -> Result<PartitionResult, PartitionError> + 'a>;
    let mut stages: Vec<(FallbackStage, StageFn<'_>)> = Vec::new();
    for (stage, lanczos) in spectral {
        let meter = &meter;
        stages.push((
            stage,
            Box::new(move || {
                spectral_ig_stage(hg, weighting, &lanczos, refine, meter, fault_for(stage))
            }),
        ));
    }
    {
        let meter = &meter;
        stages.push((
            FallbackStage::CliqueEig1,
            Box::new(move || {
                clique_eig1_stage(hg, &base, meter, fault_for(FallbackStage::CliqueEig1))
            }),
        ));
        stages.push((
            FallbackStage::FmBaseline,
            Box::new(move || {
                fm_stage(hg, &opts.fm, meter, fault_for(FallbackStage::FmBaseline))
            }),
        ));
    }

    let mut attempts: Vec<StageAttempt> = Vec::new();
    for (stage, run) in stages {
        match run() {
            Ok(result) => {
                attempts.push(StageAttempt { stage, error: None });
                return Ok(RobustOutcome {
                    result,
                    diagnostics: Diagnostics {
                        attempts,
                        winning_stage: Some(stage),
                        matvecs: meter.matvecs_used(),
                        elapsed: meter.elapsed(),
                    },
                });
            }
            Err(error) => {
                // a spent budget or a structurally hopeless input dooms
                // every later stage too: abort instead of burning time
                let fatal = matches!(
                    error,
                    PartitionError::Budget(_) | PartitionError::TooSmall { .. }
                );
                attempts.push(StageAttempt {
                    stage,
                    error: Some(error.clone()),
                });
                if fatal {
                    return Err(failure(error, attempts, &meter));
                }
            }
        }
    }
    let error = attempts
        .last()
        .and_then(|a| a.error.clone())
        .unwrap_or(PartitionError::Degenerate);
    Err(failure(error, attempts, &meter))
}

fn failure(error: PartitionError, attempts: Vec<StageAttempt>, meter: &BudgetMeter) -> RobustFailure {
    RobustFailure {
        error,
        diagnostics: Diagnostics {
            attempts,
            winning_stage: None,
            matvecs: meter.matvecs_used(),
            elapsed: meter.elapsed(),
        },
    }
}

/// Applies the stage-entry faults common to every stage.
fn short_circuit(fault: Option<FaultKind>, meter: &BudgetMeter) -> Result<(), PartitionError> {
    match fault {
        Some(FaultKind::ForceNoConvergence) => Err(PartitionError::Eigen(
            EigenError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            },
        )),
        Some(FaultKind::ExhaustBudget) => Err(PartitionError::Budget(BudgetExceeded {
            resource: BudgetResource::Matvecs,
            matvecs_used: meter.matvecs_used(),
            elapsed: meter.elapsed(),
        })),
        _ => Ok(()),
    }
}

/// Wrapper that corrupts the first output component of every operator
/// application — the fault-injection stand-in for numerically poisoned
/// input.
struct PoisonedOperator<'a> {
    inner: &'a Laplacian,
}

impl LinearOperator for PoisonedOperator<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        if let Some(first) = y.first_mut() {
            *first = f64::NAN;
        }
    }
}

/// Fiedler pair of `q` with the all-ones nullvector deflated, honoring a
/// possible poison fault.
fn solve_fiedler(
    q: &Laplacian,
    lanczos: &LanczosOptions,
    meter: &BudgetMeter,
    fault: Option<FaultKind>,
) -> Result<EigenPair, PartitionError> {
    let n = q.dim();
    let ones = vec![1.0; n];
    let pair = if fault == Some(FaultKind::PoisonOperator) {
        smallest_deflated_metered(&PoisonedOperator { inner: q }, &[ones], lanczos, meter)
    } else {
        smallest_deflated_metered(q, &[ones], lanczos, meter)
    }?;
    Ok(pair)
}

/// Stages 1–3: spectral net ordering on the intersection graph plus the
/// IG-Match completion sweep.
fn spectral_ig_stage(
    hg: &Hypergraph,
    weighting: crate::IgWeighting,
    lanczos: &LanczosOptions,
    refine: bool,
    meter: &BudgetMeter,
    fault: Option<FaultKind>,
) -> Result<PartitionResult, PartitionError> {
    short_circuit(fault, meter)?;
    if hg.num_modules() < 2 || hg.num_nets() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let q = intersection_laplacian(hg, weighting);
    let pair = solve_fiedler(&q, lanczos, meter, fault)?;
    let order: Vec<NetId> = order_by_component(&pair.vector)
        .into_iter()
        .map(NetId)
        .collect();
    let out = ig_match_with_ordering_metered(hg, &order, refine, meter)?;
    Ok(out.result)
}

/// Stage 4: EIG1 on the clique model.
fn clique_eig1_stage(
    hg: &Hypergraph,
    lanczos: &LanczosOptions,
    meter: &BudgetMeter,
    fault: Option<FaultKind>,
) -> Result<PartitionResult, PartitionError> {
    short_circuit(fault, meter)?;
    if hg.num_modules() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let q = clique_laplacian(hg);
    let pair = solve_fiedler(&q, lanczos, meter, fault)?;
    let order: Vec<ModuleId> = order_by_component(&pair.vector)
        .into_iter()
        .map(ModuleId)
        .collect();
    sweep_module_ordering_metered(hg, &order, "EIG1", meter)
}

/// Stage 5: FM from the deterministic "first half left" seed partition —
/// no eigensolve, so it survives any numerical failure mode.
fn fm_stage(
    hg: &Hypergraph,
    fm: &FmOptions,
    meter: &BudgetMeter,
    fault: Option<FaultKind>,
) -> Result<PartitionResult, PartitionError> {
    short_circuit(fault, meter)?;
    if fault == Some(FaultKind::PoisonOperator) {
        // FM has no operator to poison; fail the same way detection would
        return Err(PartitionError::Eigen(EigenError::NonFinite {
            stage: "fault injection",
        }));
    }
    let n = hg.num_modules();
    if n < 2 {
        return Err(PartitionError::TooSmall {
            modules: n,
            nets: hg.num_nets(),
        });
    }
    let start = Bipartition::from_left_set(n, (0..n as u32 / 2).map(ModuleId));
    let improved = fm_bisect_metered(hg, &start, fm, meter)?;
    let stats = improved.partition.cut_stats(hg);
    if stats.left == 0 || stats.right == 0 {
        return Err(PartitionError::Degenerate);
    }
    Ok(PartitionResult::evaluate(hg, improved.partition, "FM", None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn healthy_input_solved_by_first_stage() {
        let out = robust_partition(&two_triangles(), &RobustOptions::default()).unwrap();
        assert_eq!(out.result.stats.cut_nets, 1);
        assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::IgMatch));
        assert_eq!(out.diagnostics.attempts.len(), 1);
        assert!(out.diagnostics.attempts[0].error.is_none());
        assert!(out.diagnostics.matvecs > 0);
    }

    #[test]
    fn zero_wall_clock_budget_aborts_with_budget_error() {
        let opts = RobustOptions {
            budget: Budget::default().with_wall_clock(Duration::ZERO),
            ..Default::default()
        };
        let fail = robust_partition(&two_triangles(), &opts).unwrap_err();
        assert!(matches!(fail.error, PartitionError::Budget(_)));
        // budget exhaustion aborts: later stages are never attempted
        assert_eq!(fail.diagnostics.attempts.len(), 1);
        assert_eq!(fail.diagnostics.winning_stage, None);
        assert!(fail.to_string().contains("budget"));
    }

    #[test]
    fn too_small_input_aborts_immediately() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        let fail = robust_partition(&hg, &RobustOptions::default()).unwrap_err();
        assert!(matches!(fail.error, PartitionError::TooSmall { .. }));
        assert_eq!(fail.diagnostics.attempts.len(), 1);
    }

    #[test]
    fn degenerate_intersection_model_falls_back_to_clique() {
        // both nets span all modules: the IG-Match completion is
        // degenerate at every split (all spectral stages fail), but the
        // clique-model EIG1 sweep always returns a finite-ratio split
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
        let out = robust_partition(&hg, &RobustOptions::default()).unwrap();
        assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::CliqueEig1));
        let s = &out.result.stats;
        assert!(s.left > 0 && s.right > 0);
        // 1 IG-Match + reseeds + dense all failed, then clique won
        let reseeds = RobustOptions::default().reseed_attempts;
        assert_eq!(out.diagnostics.attempts.len(), reseeds + 3);
        for a in &out.diagnostics.attempts[..reseeds + 2] {
            assert!(matches!(a.error, Some(PartitionError::Degenerate)), "{a:?}");
        }
    }

    #[test]
    fn diagnostics_display_mentions_stage() {
        let out = robust_partition(&two_triangles(), &RobustOptions::default()).unwrap();
        let s = out.diagnostics.to_string();
        assert!(s.contains("IG-Match"), "{s}");
        assert!(s.contains("matvecs"), "{s}");
    }

    #[test]
    fn fault_plan_lookup() {
        let plan = FaultPlan::new()
            .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
            .with(FallbackStage::FmBaseline, FaultKind::ExhaustBudget);
        assert_eq!(
            plan.fault_at(FallbackStage::IgMatch),
            Some(FaultKind::ForceNoConvergence)
        );
        assert_eq!(plan.fault_at(FallbackStage::CliqueEig1), None);
    }
}
