//! Resilient partitioning: a fallback chain with budgets and
//! deterministic fault injection.
//!
//! The plain entry points ([`ig_match`](crate::ig_match),
//! [`eig1`](crate::eig1()), …) propagate the first failure they hit. This
//! module makes partitioning *total*: [`robust_partition`] runs a chain
//! of progressively more conservative strategies and returns either a
//! [`PartitionResult`] or a structured [`RobustFailure`] — never a panic,
//! and (given a wall-clock [`Budget`]) never a hang. The chain is
//!
//! 1. **IG-Match** on the intersection model — the paper's algorithm,
//!    best quality (§3);
//! 2. **reseeded Lanczos restarts** — the same algorithm with fresh
//!    eigensolver seeds, which recovers from unlucky start vectors;
//! 3. **dense eigensolve** — the spectral ordering computed by the dense
//!    Jacobi solver instead of Lanczos, immune to convergence stagnation;
//! 4. **clique-model EIG1** — the Hagen–Kahng baseline on the module
//!    graph, which sidesteps a pathological intersection graph entirely;
//! 5. **FM baseline** — purely combinatorial Fiduccia–Mattheyses from a
//!    deterministic seed partition, requiring no eigensolve at all.
//!
//! Since 0.2.0 the chain is *declarative*: an internal builder assembles
//! a [`FallbackChain`] of engine stages (one link per strategy above) and
//! [`robust_partition_ctx`] runs it against a shared
//! [`RunContext`] — the escalation policy is data, not control flow.
//!
//! Every attempt is recorded in [`Diagnostics`], so callers can see which
//! stage produced the answer and why earlier stages failed. Budget
//! exhaustion ([`PartitionError::Budget`]) and structurally hopeless
//! inputs ([`PartitionError::TooSmall`]) abort the chain immediately:
//! later stages share the same spent budget / tiny input and would fail
//! identically.
//!
//! With the `fault-inject` feature, a [`FaultPlan`] deterministically
//! forces failures at chosen stages so every fallback link can be tested.

use crate::eig1::sweep_module_ordering_ctx;
use crate::engine::stages::FmStage;
use crate::engine::{ChainAttempt, FallbackChain, Partitioner, RunContext};
use crate::igmatch::ig_match_with_ordering_ctx;
use crate::ordering::order_by_component;
use crate::{IgMatchOptions, PartitionError, PartitionResult};
use np_baselines::FmOptions;
use np_eigen::{smallest_deflated_metered, EigenError, EigenPair, LanczosOptions};
use np_netlist::rng::derive_seed;
use np_netlist::{Hypergraph, ModuleId, NetId};
use np_sparse::{Budget, BudgetExceeded, BudgetMeter, BudgetResource, Laplacian, LinearOperator};
use std::fmt;
use std::time::Duration;

/// One link of the fallback chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackStage {
    /// IG-Match with the caller's eigensolver options.
    IgMatch,
    /// IG-Match retried with a reseeded Lanczos start vector.
    ReseededLanczos,
    /// IG-Match with the spectral ordering computed densely.
    DenseEigensolve,
    /// EIG1 on the clique model.
    CliqueEig1,
    /// Fiduccia–Mattheyses from a deterministic seed partition.
    FmBaseline,
}

impl FallbackStage {
    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            FallbackStage::IgMatch => "IG-Match",
            FallbackStage::ReseededLanczos => "reseeded Lanczos",
            FallbackStage::DenseEigensolve => "dense eigensolve",
            FallbackStage::CliqueEig1 => "clique EIG1",
            FallbackStage::FmBaseline => "FM baseline",
        }
    }
}

impl fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The failure a [`FaultPlan`] forces at a stage (test-only machinery;
/// plans only take effect when the `fault-inject` feature is enabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage fails up front with
    /// [`EigenError::NoConvergence`], as if the eigensolve stagnated.
    ForceNoConvergence,
    /// The stage's operator is wrapped to emit NaN, exercising the
    /// [`EigenError::NonFinite`] detection path. At the (eigensolve-free)
    /// FM stage this short-circuits with `NonFinite` directly.
    PoisonOperator,
    /// The stage fails with [`PartitionError::Budget`] carrying the real
    /// spend so far, as if the budget ran out on entry.
    ExhaustBudget,
}

/// Deterministic fault plan: which [`FaultKind`] to force at which
/// stage. Only consulted when the `fault-inject` feature is enabled;
/// release builds never look at it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(FallbackStage, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `stage` (builder style). A fault at
    /// [`FallbackStage::ReseededLanczos`] fires on every reseed attempt.
    #[must_use]
    pub fn with(mut self, stage: FallbackStage, kind: FaultKind) -> Self {
        self.faults.push((stage, kind));
        self
    }

    /// The fault registered for `stage`, if any (first match wins).
    pub fn fault_at(&self, stage: FallbackStage) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, k)| k)
    }
}

/// Options for [`robust_partition`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustOptions {
    /// Options for the primary IG-Match stages (weighting, eigensolver,
    /// free-module refinement).
    pub ig_match: IgMatchOptions,
    /// Resource budget for the *whole* chain (all stages share one
    /// meter). Unlimited by default.
    pub budget: Budget,
    /// Number of reseeded-Lanczos retries before escalating to the dense
    /// eigensolve.
    pub reseed_attempts: usize,
    /// Options for the final FM stage.
    pub fm: FmOptions,
    /// Deterministic faults to force (testing the chain itself).
    #[cfg(feature = "fault-inject")]
    pub faults: FaultPlan,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            ig_match: IgMatchOptions::default(),
            budget: Budget::UNLIMITED,
            reseed_attempts: 2,
            fm: FmOptions::default(),
            #[cfg(feature = "fault-inject")]
            faults: FaultPlan::default(),
        }
    }
}

/// Record of one stage execution.
#[derive(Clone, Debug, PartialEq)]
pub struct StageAttempt {
    /// Which stage ran.
    pub stage: FallbackStage,
    /// `None` if the stage produced the final result, otherwise the error
    /// that made the chain move on (or abort).
    pub error: Option<PartitionError>,
}

/// What happened across the whole chain: every attempt in order, the
/// winning stage (if any) and the total resource spend.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostics {
    /// Every stage execution, in chain order. The last entry is the
    /// winning stage on success.
    pub attempts: Vec<StageAttempt>,
    /// The stage that produced the result; `None` if the chain failed.
    pub winning_stage: Option<FallbackStage>,
    /// Matvec-equivalents charged across all stages.
    pub matvecs: u64,
    /// Wall-clock time for the whole chain.
    pub elapsed: Duration,
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.winning_stage {
            Some(s) => write!(f, "solved by {s} after {} attempt(s)", self.attempts.len())?,
            None => write!(
                f,
                "no stage succeeded in {} attempt(s)",
                self.attempts.len()
            )?,
        }
        write!(
            f,
            ", {} matvecs, {:.1?} elapsed",
            self.matvecs, self.elapsed
        )
    }
}

/// Successful outcome of [`robust_partition`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustOutcome {
    /// The partition produced by the winning stage.
    pub result: PartitionResult,
    /// The chain's execution record.
    pub diagnostics: Diagnostics,
}

/// Failure of the whole chain, with the execution record attached.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustFailure {
    /// The error that ended the chain: the aborting error for budget
    /// exhaustion / hopeless inputs, otherwise the last stage's error.
    pub error: PartitionError,
    /// The chain's execution record (partial progress included).
    pub diagnostics: Diagnostics,
}

impl fmt::Display for RobustFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partitioning failed: {} ({})",
            self.error, self.diagnostics
        )
    }
}

impl std::error::Error for RobustFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Runs the fallback chain until a stage produces a partition.
///
/// The stages and escalation policy are described in the
/// [module docs](self). All stages share one [`BudgetMeter`] derived from
/// `opts.budget`; charging is cooperative at per-iteration granularity,
/// so a tripped budget surfaces within one iteration's work of the
/// requested limits.
///
/// # Errors
///
/// [`RobustFailure`] carrying the decisive [`PartitionError`] and the
/// full [`Diagnostics`]. The chain aborts early (without trying later
/// stages) on [`PartitionError::Budget`] and
/// [`PartitionError::TooSmall`]; anything else escalates to the next
/// stage.
///
/// # Example
///
/// ```
/// use np_core::robust::{robust_partition, FallbackStage, RobustOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let out = robust_partition(&hg, &RobustOptions::default()).unwrap();
/// assert_eq!(out.result.stats.cut_nets, 1);
/// assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::IgMatch));
/// ```
pub fn robust_partition(
    hg: &Hypergraph,
    opts: &RobustOptions,
) -> Result<RobustOutcome, RobustFailure> {
    let meter = BudgetMeter::new(&opts.budget);
    robust_partition_ctx(hg, opts, &RunContext::with_meter(&meter))
}

/// [`robust_partition`] against an execution context — the single
/// implementation behind every entry point. The context's meter governs
/// the whole chain; `opts.budget` is *not* consulted here (the plain
/// entry point builds its context from it), so a caller-supplied context
/// can share one allowance across several runs.
///
/// An event sink on the context sees every link of the chain as
/// `Started`/`Finished` stage events.
///
/// # Errors
///
/// Same as [`robust_partition`].
pub fn robust_partition_ctx(
    hg: &Hypergraph,
    opts: &RobustOptions,
    ctx: &RunContext<'_>,
) -> Result<RobustOutcome, RobustFailure> {
    let chain = build_chain(opts);
    match chain.run(hg, ctx) {
        Ok(out) => Ok(RobustOutcome {
            result: out.result,
            diagnostics: diagnostics(out.attempts, Some(out.winner), ctx.meter()),
        }),
        Err(fail) => Err(RobustFailure {
            error: fail.error,
            diagnostics: diagnostics(fail.attempts, None, ctx.meter()),
        }),
    }
}

/// Declares the five-link escalation policy of the module docs as engine
/// data: one [`FallbackChain`] whose links are fault-aware stages. The
/// chain's [`default_fatal`](crate::engine::default_fatal) policy
/// provides the budget-exhaustion / hopeless-input abort behavior.
fn build_chain(opts: &RobustOptions) -> FallbackChain<FallbackStage> {
    let fault_for = |stage: FallbackStage| -> Option<FaultKind> {
        #[cfg(feature = "fault-inject")]
        {
            opts.faults.fault_at(stage)
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = stage;
            None
        }
    };

    let base = opts.ig_match.lanczos;
    let weighting = opts.ig_match.weighting;
    let refine = opts.ig_match.refine_free_modules;
    let spectral = |stage: FallbackStage, lanczos: LanczosOptions| SpectralIgLink {
        name: stage.name(),
        weighting,
        lanczos,
        refine,
        fault: fault_for(stage),
    };

    let mut chain = FallbackChain::new().link(
        FallbackStage::IgMatch,
        spectral(FallbackStage::IgMatch, base),
    );
    for attempt in 0..opts.reseed_attempts {
        let mut lanczos = base;
        lanczos.seed = derive_seed(base.seed, attempt as u64 + 1);
        chain = chain.link(
            FallbackStage::ReseededLanczos,
            spectral(FallbackStage::ReseededLanczos, lanczos),
        );
    }
    let mut dense = base;
    dense.dense_cutoff = usize::MAX;
    chain
        .link(
            FallbackStage::DenseEigensolve,
            spectral(FallbackStage::DenseEigensolve, dense),
        )
        .link(
            FallbackStage::CliqueEig1,
            CliqueEig1Link {
                lanczos: base,
                fault: fault_for(FallbackStage::CliqueEig1),
            },
        )
        .link(
            FallbackStage::FmBaseline,
            FmLink {
                fm: opts.fm,
                fault: fault_for(FallbackStage::FmBaseline),
            },
        )
}

/// Converts the chain's attempt record into the public [`Diagnostics`].
fn diagnostics(
    attempts: Vec<ChainAttempt<FallbackStage>>,
    winning_stage: Option<FallbackStage>,
    meter: &BudgetMeter,
) -> Diagnostics {
    Diagnostics {
        attempts: attempts
            .into_iter()
            .map(|a| StageAttempt {
                stage: a.label,
                error: a.error,
            })
            .collect(),
        winning_stage,
        matvecs: meter.matvecs_used(),
        elapsed: meter.elapsed(),
    }
}

/// Applies the stage-entry faults common to every stage.
fn short_circuit(fault: Option<FaultKind>, meter: &BudgetMeter) -> Result<(), PartitionError> {
    match fault {
        Some(FaultKind::ForceNoConvergence) => {
            Err(PartitionError::Eigen(EigenError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            }))
        }
        Some(FaultKind::ExhaustBudget) => Err(PartitionError::Budget(BudgetExceeded {
            resource: BudgetResource::Matvecs,
            matvecs_used: meter.matvecs_used(),
            elapsed: meter.elapsed(),
        })),
        _ => Ok(()),
    }
}

/// Wrapper that corrupts the first output component of every operator
/// application — the fault-injection stand-in for numerically poisoned
/// input.
struct PoisonedOperator<'a> {
    inner: &'a Laplacian,
}

impl LinearOperator for PoisonedOperator<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        if let Some(first) = y.first_mut() {
            *first = f64::NAN;
        }
    }
}

/// Fiedler pair of `q` with the all-ones nullvector deflated, honoring a
/// possible poison fault. Matvecs shard over `threads` OS threads
/// (bit-identical to serial for every count); the poisoned-fault path
/// stays serial because the corruption wrapper is the operator under
/// test.
fn solve_fiedler(
    q: &Laplacian,
    lanczos: &LanczosOptions,
    meter: &BudgetMeter,
    fault: Option<FaultKind>,
    threads: usize,
) -> Result<EigenPair, PartitionError> {
    let n = q.dim();
    let ones = vec![1.0; n];
    let pair = if fault == Some(FaultKind::PoisonOperator) {
        smallest_deflated_metered(&PoisonedOperator { inner: q }, &[ones], lanczos, meter)
    } else {
        smallest_deflated_metered(&q.threaded(threads), &[ones], lanczos, meter)
    }?;
    Ok(pair)
}

/// Links 1–3: spectral net ordering on the intersection graph plus the
/// IG-Match completion sweep, with a link-specific eigensolver
/// configuration (base seed, reseeded, or dense).
struct SpectralIgLink {
    name: &'static str,
    weighting: crate::IgWeighting,
    lanczos: LanczosOptions,
    refine: bool,
    fault: Option<FaultKind>,
}

impl Partitioner for SpectralIgLink {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let meter = ctx.meter();
        short_circuit(self.fault, meter)?;
        if hg.num_modules() < 2 || hg.num_nets() < 2 {
            return Err(PartitionError::TooSmall {
                modules: hg.num_modules(),
                nets: hg.num_nets(),
            });
        }
        let q = ctx.intersection_laplacian(hg, self.weighting);
        let pair = solve_fiedler(&q, &self.lanczos, meter, self.fault, ctx.threads())?;
        let order: Vec<NetId> = order_by_component(&pair.vector)
            .into_iter()
            .map(NetId)
            .collect();
        let out = ig_match_with_ordering_ctx(hg, &order, self.refine, ctx)?;
        Ok(out.result)
    }
}

/// Link 4: EIG1 on the clique model. Distinct from
/// [`Eig1Stage`](crate::engine::stages::Eig1Stage) only in supporting
/// fault injection through the poisonable deflated eigensolve.
struct CliqueEig1Link {
    lanczos: LanczosOptions,
    fault: Option<FaultKind>,
}

impl Partitioner for CliqueEig1Link {
    fn name(&self) -> &'static str {
        FallbackStage::CliqueEig1.name()
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let meter = ctx.meter();
        short_circuit(self.fault, meter)?;
        if hg.num_modules() < 2 {
            return Err(PartitionError::TooSmall {
                modules: hg.num_modules(),
                nets: hg.num_nets(),
            });
        }
        let q = ctx.clique_laplacian(hg);
        let pair = solve_fiedler(&q, &self.lanczos, meter, self.fault, ctx.threads())?;
        let order: Vec<ModuleId> = order_by_component(&pair.vector)
            .into_iter()
            .map(ModuleId)
            .collect();
        sweep_module_ordering_ctx(hg, &order, "EIG1", ctx)
    }
}

/// Link 5: FM from the deterministic "first half left" seed partition —
/// no eigensolve, so it survives any numerical failure mode. Delegates
/// to the engine's [`FmStage`] after the fault checks.
struct FmLink {
    fm: FmOptions,
    fault: Option<FaultKind>,
}

impl Partitioner for FmLink {
    fn name(&self) -> &'static str {
        FallbackStage::FmBaseline.name()
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        short_circuit(self.fault, ctx.meter())?;
        if self.fault == Some(FaultKind::PoisonOperator) {
            // FM has no operator to poison; fail the same way detection would
            return Err(PartitionError::Eigen(EigenError::NonFinite {
                stage: "fault injection",
            }));
        }
        FmStage::new(self.fm).partition(hg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn healthy_input_solved_by_first_stage() {
        let out = robust_partition(&two_triangles(), &RobustOptions::default()).unwrap();
        assert_eq!(out.result.stats.cut_nets, 1);
        assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::IgMatch));
        assert_eq!(out.diagnostics.attempts.len(), 1);
        assert!(out.diagnostics.attempts[0].error.is_none());
        assert!(out.diagnostics.matvecs > 0);
    }

    #[test]
    fn zero_wall_clock_budget_aborts_with_budget_error() {
        let opts = RobustOptions {
            budget: Budget::default().with_wall_clock(Duration::ZERO),
            ..Default::default()
        };
        let fail = robust_partition(&two_triangles(), &opts).unwrap_err();
        assert!(matches!(fail.error, PartitionError::Budget(_)));
        // budget exhaustion aborts: later stages are never attempted
        assert_eq!(fail.diagnostics.attempts.len(), 1);
        assert_eq!(fail.diagnostics.winning_stage, None);
        assert!(fail.to_string().contains("budget"));
    }

    #[test]
    fn too_small_input_aborts_immediately() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        let fail = robust_partition(&hg, &RobustOptions::default()).unwrap_err();
        assert!(matches!(fail.error, PartitionError::TooSmall { .. }));
        assert_eq!(fail.diagnostics.attempts.len(), 1);
    }

    #[test]
    fn degenerate_intersection_model_falls_back_to_clique() {
        // both nets span all modules: the IG-Match completion is
        // degenerate at every split (all spectral stages fail), but the
        // clique-model EIG1 sweep always returns a finite-ratio split
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
        let out = robust_partition(&hg, &RobustOptions::default()).unwrap();
        assert_eq!(
            out.diagnostics.winning_stage,
            Some(FallbackStage::CliqueEig1)
        );
        let s = &out.result.stats;
        assert!(s.left > 0 && s.right > 0);
        // 1 IG-Match + reseeds + dense all failed, then clique won
        let reseeds = RobustOptions::default().reseed_attempts;
        assert_eq!(out.diagnostics.attempts.len(), reseeds + 3);
        for a in &out.diagnostics.attempts[..reseeds + 2] {
            assert!(matches!(a.error, Some(PartitionError::Degenerate)), "{a:?}");
        }
    }

    #[test]
    fn diagnostics_display_mentions_stage() {
        let out = robust_partition(&two_triangles(), &RobustOptions::default()).unwrap();
        let s = out.diagnostics.to_string();
        assert!(s.contains("IG-Match"), "{s}");
        assert!(s.contains("matvecs"), "{s}");
    }

    #[test]
    fn fault_plan_lookup() {
        let plan = FaultPlan::new()
            .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
            .with(FallbackStage::FmBaseline, FaultKind::ExhaustBudget);
        assert_eq!(
            plan.fault_at(FallbackStage::IgMatch),
            Some(FaultKind::ForceNoConvergence)
        );
        assert_eq!(plan.fault_at(FallbackStage::CliqueEig1), None);
    }
}
