//! The IG-Vote (EIG1-IG) heuristic of Hagen–Kahng \[14\]
//! (paper Appendix B).
//!
//! Given the spectral net ordering, modules are assigned to sides by a
//! *voting* rule: each net exerts weight `1/|net|` on each of its modules.
//! Starting with every module in `U`, nets are shifted one by one to `W`
//! in eigenvector order; a module follows to `W` once at least half of its
//! total incident net weight has shifted. The ratio cut is recorded after
//! every net move, a second symmetric pass runs from the other end of the
//! ordering, and the best of the up-to-`2(m−1)` candidate partitions wins.

use crate::engine::RunContext;
use crate::models::IgWeighting;
use crate::ordering::spectral_net_ordering_ctx;
use crate::{PartitionError, PartitionResult};
use np_eigen::LanczosOptions;
use np_netlist::partition::CutTracker;
use np_netlist::{Hypergraph, NetId, Side};
use np_sparse::BudgetMeter;

/// Options for [`ig_vote`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IgVoteOptions {
    /// Intersection-graph edge weighting used for the spectral ordering.
    pub weighting: IgWeighting,
    /// Eigensolver options.
    pub lanczos: LanczosOptions,
    /// Fraction of a module's total net weight that must shift before the
    /// module follows (Appendix B uses `0.5`). Must be in `(0, 1]`.
    pub threshold: f64,
}

impl Default for IgVoteOptions {
    fn default() -> Self {
        IgVoteOptions {
            weighting: IgWeighting::default(),
            lanczos: LanczosOptions::default(),
            threshold: 0.5,
        }
    }
}

/// Runs the IG-Vote heuristic.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] for fewer than 2 modules or nets;
/// * [`PartitionError::Eigen`] if the eigensolve fails;
/// * [`PartitionError::Degenerate`] if no candidate partition has two
///   non-empty sides.
///
/// # Example
///
/// ```
/// use np_core::{ig_vote, IgVoteOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let r = ig_vote(&hg, &IgVoteOptions::default())?;
/// assert_eq!(r.stats.cut_nets, 1);
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn ig_vote(hg: &Hypergraph, opts: &IgVoteOptions) -> Result<PartitionResult, PartitionError> {
    ig_vote_ctx(hg, opts, &RunContext::unlimited())
}

/// [`ig_vote`] against an execution context — the single implementation
/// behind every entry point. The eigensolve charges the context's meter
/// per matvec and the voting passes check its wall clock at every net
/// step.
///
/// # Errors
///
/// The [`ig_vote`] errors plus [`PartitionError::Budget`] when the
/// context's meter reports a limit hit.
///
/// # Panics
///
/// Panics if `opts.threshold` is outside `(0, 1]`.
pub fn ig_vote_ctx(
    hg: &Hypergraph,
    opts: &IgVoteOptions,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    if hg.num_modules() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    assert!(
        opts.threshold > 0.0 && opts.threshold <= 1.0,
        "voting threshold must be in (0, 1]"
    );
    let order = spectral_net_ordering_ctx(hg, opts.weighting, &opts.lanczos, ctx)?;
    vote_with_ordering_threshold_ctx(hg, &order, opts.threshold, ctx)
}

/// Runs the IG-Vote module-assignment given an explicit net ordering.
/// Exposed so the voting rule can be studied with non-spectral orderings.
///
/// # Errors
///
/// [`PartitionError::Degenerate`] if no candidate partition has two
/// non-empty sides.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the nets of `hg`.
pub fn vote_with_ordering(
    hg: &Hypergraph,
    order: &[NetId],
) -> Result<PartitionResult, PartitionError> {
    vote_with_ordering_threshold(hg, order, 0.5)
}

/// [`vote_with_ordering`] with an explicit voting threshold (fraction of
/// a module's incident net weight that must shift before it moves).
///
/// # Errors
///
/// [`PartitionError::Degenerate`] if no candidate partition has two
/// non-empty sides.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the nets of `hg`.
pub fn vote_with_ordering_threshold(
    hg: &Hypergraph,
    order: &[NetId],
    threshold: f64,
) -> Result<PartitionResult, PartitionError> {
    vote_with_ordering_threshold_ctx(hg, order, threshold, &RunContext::unlimited())
}

/// [`vote_with_ordering_threshold`] against an execution context — the
/// single implementation behind every entry point. The voting passes
/// check the context meter's wall clock at every net step.
///
/// # Errors
///
/// The [`vote_with_ordering_threshold`] errors plus
/// [`PartitionError::Budget`] when the context's meter reports a limit
/// hit.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the nets of `hg`.
pub fn vote_with_ordering_threshold_ctx(
    hg: &Hypergraph,
    order: &[NetId],
    threshold: f64,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    assert_eq!(order.len(), hg.num_nets(), "net ordering length mismatch");
    let meter = ctx.meter();

    // total incident net weight per module: w_i = Σ_{nets j ∋ i} 1/|s_j|
    let mut total_weight = vec![0.0f64; hg.num_modules()];
    for net in hg.nets() {
        let w = 1.0 / hg.net_size(net) as f64;
        for &m in hg.pins(net) {
            total_weight[m.index()] += w;
        }
    }

    // each pass returns (best ratio, best step index); the partition is
    // rebuilt afterwards by replaying the winning pass
    let forward = vote_pass(hg, order, &total_weight, threshold, false, meter)?;
    let backward = vote_pass(hg, order, &total_weight, threshold, true, meter)?;

    let (reverse, step) = match (forward, backward) {
        (Some((fr, fs)), Some((br, bs))) => {
            if fr <= br {
                (false, fs)
            } else {
                (true, bs)
            }
        }
        (Some((_, fs)), None) => (false, fs),
        (None, Some((_, bs))) => (true, bs),
        (None, None) => return Err(PartitionError::Degenerate),
    };
    let partition = replay_vote(hg, order, &total_weight, threshold, reverse, step);
    Ok(PartitionResult::evaluate(
        hg,
        partition,
        "IG-Vote",
        Some(step),
    ))
}

/// One voting pass. Returns the best `(ratio, step)` over all net moves,
/// or `None` if every candidate had an empty side. `reverse = true` runs
/// from the other end of the ordering (all modules start in `W`). The
/// meter's wall clock is checked at every net step.
fn vote_pass(
    hg: &Hypergraph,
    order: &[NetId],
    total_weight: &[f64],
    threshold: f64,
    reverse: bool,
    meter: &BudgetMeter,
) -> Result<Option<(f64, usize)>, PartitionError> {
    let start = if reverse { Side::Right } else { Side::Left };
    let dest = start.flip();
    let mut tracker = CutTracker::all_on(hg, start);
    let mut moved_weight = vec![0.0f64; hg.num_modules()];
    let mut best: Option<(f64, usize)> = None;
    for (step, &net) in iter_order(order, reverse).enumerate() {
        meter.check()?;
        let w = 1.0 / hg.net_size(net) as f64;
        for &m in hg.pins(net) {
            moved_weight[m.index()] += w;
            if tracker.side(m) == start
                && moved_weight[m.index()] >= total_weight[m.index()] * threshold
            {
                tracker.move_module(m, dest);
            }
        }
        let ratio = tracker.ratio();
        if ratio.is_finite() && best.is_none_or(|(r, _)| ratio < r) {
            best = Some((ratio, step));
        }
    }
    Ok(best)
}

/// Re-runs a voting pass up to and including `stop_step` and returns the
/// resulting partition. Replays only what a (metered) [`vote_pass`]
/// already completed, so it needs no meter of its own.
fn replay_vote(
    hg: &Hypergraph,
    order: &[NetId],
    total_weight: &[f64],
    threshold: f64,
    reverse: bool,
    stop_step: usize,
) -> np_netlist::Bipartition {
    let start = if reverse { Side::Right } else { Side::Left };
    let dest = start.flip();
    let mut tracker = CutTracker::all_on(hg, start);
    let mut moved_weight = vec![0.0f64; hg.num_modules()];
    for (step, &net) in iter_order(order, reverse).enumerate() {
        let w = 1.0 / hg.net_size(net) as f64;
        for &m in hg.pins(net) {
            moved_weight[m.index()] += w;
            if tracker.side(m) == start
                && moved_weight[m.index()] >= total_weight[m.index()] * threshold
            {
                tracker.move_module(m, dest);
            }
        }
        if step == stop_step {
            break;
        }
    }
    tracker.to_partition()
}

fn iter_order(order: &[NetId], reverse: bool) -> Box<dyn Iterator<Item = &NetId> + '_> {
    if reverse {
        Box::new(order.iter().rev())
    } else {
        Box::new(order.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn finds_bridge_cut_with_spectral_ordering() {
        let r = ig_vote(&two_triangles(), &IgVoteOptions::default()).unwrap();
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "3:3");
        assert_eq!(r.algorithm, "IG-Vote");
    }

    #[test]
    fn explicit_good_ordering_works() {
        let hg = two_triangles();
        // cluster-A nets first, bridge in the middle, cluster-B nets last
        let order: Vec<NetId> = [0u32, 1, 2, 6, 3, 4, 5].iter().map(|&i| NetId(i)).collect();
        let r = vote_with_ordering(&hg, &order).unwrap();
        assert_eq!(r.stats.cut_nets, 1);
    }

    #[test]
    fn result_stats_match_partition() {
        let hg = two_triangles();
        let r = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
        assert_eq!(r.stats, r.partition.cut_stats(&hg));
    }

    #[test]
    fn voting_threshold_moves_module_at_half_weight() {
        // module 1 is in nets {0,1} and {1,2}; moving net {0,1} shifts
        // half of its weight, which meets the ≥ w/2 threshold
        let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        let order: Vec<NetId> = vec![NetId(0), NetId(1)];
        let r = vote_with_ordering(&hg, &order).unwrap();
        // after net 0 moves: modules {0,1} moved -> partition {0,1}|{2}
        // with cut 1, ratio 1/2; the sweep can't do better on this chain
        assert_eq!(r.stats.cut_nets, 1);
    }

    #[test]
    fn single_net_instance_degenerate() {
        // one net covering all modules: every candidate has an empty side
        let hg = hypergraph_from_nets(3, &[vec![0, 1, 2]]);
        let order = vec![NetId(0)];
        assert!(matches!(
            vote_with_ordering(&hg, &order),
            Err(PartitionError::Degenerate)
        ));
    }

    #[test]
    fn deterministic() {
        let hg = two_triangles();
        let a = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
        let b = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn threshold_parameter_changes_behavior_but_stays_valid() {
        let hg = two_triangles();
        for threshold in [0.25, 0.5, 0.75, 1.0] {
            let opts = IgVoteOptions {
                threshold,
                ..Default::default()
            };
            let r = ig_vote(&hg, &opts).unwrap();
            let s = r.partition.cut_stats(&hg);
            assert!(s.left > 0 && s.right > 0, "threshold {threshold}");
            assert_eq!(s, r.stats);
        }
    }

    #[test]
    #[should_panic(expected = "voting threshold")]
    fn bad_threshold_panics() {
        let _ = ig_vote(
            &two_triangles(),
            &IgVoteOptions {
                threshold: 0.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn ctx_matches_plain_and_trips_on_zero_clock() {
        use np_sparse::Budget;
        use std::time::Duration;
        let hg = two_triangles();
        let plain = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
        let via_ctx =
            ig_vote_ctx(&hg, &IgVoteOptions::default(), &RunContext::unlimited()).unwrap();
        assert_eq!(plain.partition, via_ctx.partition);
        let tight = RunContext::with_budget(&Budget::default().with_wall_clock(Duration::ZERO));
        assert!(matches!(
            ig_vote_ctx(&hg, &IgVoteOptions::default(), &tight),
            Err(PartitionError::Budget(_))
        ));
    }

    #[test]
    fn all_weightings_work() {
        let hg = two_triangles();
        for w in IgWeighting::ALL {
            let opts = IgVoteOptions {
                weighting: w,
                ..Default::default()
            };
            let r = ig_vote(&hg, &opts).unwrap();
            assert_eq!(r.stats.cut_nets, 1, "weighting {}", w.name());
        }
    }
}
