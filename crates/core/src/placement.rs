//! Hall's r-dimensional quadratic placement (paper Appendix A).
//!
//! Hall showed that the vectors `x` minimizing the squared-wirelength
//! objective `z = ½ Σ_ij A_ij (x_i − x_j)²` subject to `‖x‖ = 1` are the
//! eigenvectors of `Q = D − A`: the trivial all-ones vector is excluded
//! and the next `r` eigenvectors give an `r`-dimensional placement in
//! which strongly connected modules sit close together. The paper uses
//! the 1-D case (the Fiedler vector) for partitioning; this module
//! computes the general embedding, which is the basis of spectral
//! placement engines and a handy visualization of what the partitioners
//! "see".
//!
//! Successive eigenvectors are obtained by repeated deflation: after the
//! Fiedler vector is found, it joins the deflation set and the next
//! smallest eigenpair is computed, and so on.

use crate::models::{clique_laplacian, intersection_laplacian, IgWeighting};
use crate::PartitionError;
use np_eigen::{smallest_deflated, LanczosOptions};
use np_netlist::Hypergraph;
use np_sparse::{Laplacian, LinearOperator};

/// An `r`-dimensional spectral placement: coordinates per vertex plus the
/// eigenvalues of the used eigenvectors.
#[derive(Clone, Debug, PartialEq)]
pub struct SpectralPlacement {
    /// `coords[v]` holds the `r` coordinates of vertex `v`.
    pub coords: Vec<Vec<f64>>,
    /// The eigenvalues `λ₂ ≤ λ₃ ≤ …` of the dimensions used.
    pub eigenvalues: Vec<f64>,
}

impl SpectralPlacement {
    /// Number of placed vertices.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Returns `true` if nothing was placed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Total squared wirelength `Σ_dims xᵀQx` of the placement — equals
    /// the sum of the used eigenvalues (Hall's optimality result), which
    /// the tests verify.
    pub fn squared_wirelength(&self, q: &Laplacian) -> f64 {
        (0..self.dims())
            .map(|d| {
                let x: Vec<f64> = self.coords.iter().map(|c| c[d]).collect();
                q.quadratic_form(&x)
            })
            .sum()
    }
}

/// Computes the `dims`-dimensional Hall placement of an arbitrary graph
/// Laplacian.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] if the graph has fewer than `dims + 1`
///   vertices;
/// * [`PartitionError::Eigen`] if an eigensolve fails.
pub fn hall_placement(
    q: &Laplacian,
    dims: usize,
    opts: &LanczosOptions,
) -> Result<SpectralPlacement, PartitionError> {
    let n = q.dim();
    if n < dims + 1 || dims == 0 {
        return Err(PartitionError::TooSmall {
            modules: n,
            nets: 0,
        });
    }
    let mut deflate: Vec<Vec<f64>> = vec![vec![1.0 / (n as f64).sqrt(); n]];
    let mut eigenvalues = Vec::with_capacity(dims);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let pair = smallest_deflated(q, &deflate, opts)?;
        eigenvalues.push(pair.value);
        deflate.push(pair.vector.clone());
        vectors.push(pair.vector);
    }
    let coords = (0..n)
        .map(|v| vectors.iter().map(|x| x[v]).collect())
        .collect();
    Ok(SpectralPlacement {
        coords,
        eigenvalues,
    })
}

/// Hall placement of the netlist's *modules* under the clique net model —
/// Appendix A exactly as written.
///
/// # Errors
///
/// Same as [`hall_placement`].
///
/// # Example
///
/// ```
/// use np_core::placement::module_placement;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let p = module_placement(&hg, 2, &Default::default())?;
/// // the two triangles separate along the first (Fiedler) coordinate
/// let side = |v: usize| p.coords[v][0] > 0.0;
/// assert_eq!(side(0), side(1));
/// assert_ne!(side(0), side(5));
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn module_placement(
    hg: &Hypergraph,
    dims: usize,
    opts: &LanczosOptions,
) -> Result<SpectralPlacement, PartitionError> {
    hall_placement(&clique_laplacian(hg), dims, opts)
}

/// Hall placement of the netlist's *nets* on the intersection graph — the
/// "nets-as-points" view (paper §2.2, citing Pillage–Rohrer).
///
/// # Errors
///
/// Same as [`hall_placement`].
pub fn net_placement(
    hg: &Hypergraph,
    weighting: IgWeighting,
    dims: usize,
    opts: &LanczosOptions,
) -> Result<SpectralPlacement, PartitionError> {
    hall_placement(&intersection_laplacian(hg, weighting), dims, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_eigen::dense::{jacobi_eigen, materialize};
    use np_netlist::hypergraph_from_nets;
    use np_sparse::vecops::dot;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn coordinates_are_orthonormal_eigenvectors() {
        let hg = two_triangles();
        let p = module_placement(&hg, 3, &Default::default()).unwrap();
        assert_eq!(p.dims(), 3);
        assert_eq!(p.len(), 6);
        for d in 0..3 {
            let x: Vec<f64> = p.coords.iter().map(|c| c[d]).collect();
            assert!((dot(&x, &x) - 1.0).abs() < 1e-8, "dim {d} not unit");
            let s: f64 = x.iter().sum();
            assert!(s.abs() < 1e-6, "dim {d} not ⊥ ones");
            for d2 in 0..d {
                let y: Vec<f64> = p.coords.iter().map(|c| c[d2]).collect();
                assert!(dot(&x, &y).abs() < 1e-6, "dims {d},{d2} not orthogonal");
            }
        }
        // eigenvalues ascending
        assert!(p.eigenvalues.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    fn eigenvalues_match_dense_spectrum() {
        let hg = two_triangles();
        let q = clique_laplacian(&hg);
        let p = hall_placement(&q, 2, &Default::default()).unwrap();
        let dense = jacobi_eigen(&materialize(&q), 6);
        assert!((p.eigenvalues[0] - dense.values[1]).abs() < 1e-7);
        assert!((p.eigenvalues[1] - dense.values[2]).abs() < 1e-7);
    }

    #[test]
    fn wirelength_equals_eigenvalue_sum() {
        // Hall: the minimum of Σ xᵀQx over orthonormal x ⊥ 1 is Σ λ_i
        let hg = two_triangles();
        let q = clique_laplacian(&hg);
        let p = hall_placement(&q, 2, &Default::default()).unwrap();
        let total: f64 = p.eigenvalues.iter().sum();
        assert!((p.squared_wirelength(&q) - total).abs() < 1e-7);
    }

    #[test]
    fn first_dimension_separates_clusters() {
        let hg = two_triangles();
        let p = module_placement(&hg, 1, &Default::default()).unwrap();
        let side = |v: usize| p.coords[v][0] > 0.0;
        assert_eq!(side(0), side(1));
        assert_eq!(side(1), side(2));
        assert_ne!(side(2), side(3));
    }

    #[test]
    fn net_placement_works() {
        let hg = two_triangles();
        let p = net_placement(&hg, IgWeighting::Paper, 2, &Default::default()).unwrap();
        assert_eq!(p.len(), hg.num_nets());
        assert_eq!(p.dims(), 2);
    }

    #[test]
    fn too_many_dims_rejected() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        assert!(matches!(
            module_placement(&hg, 3, &Default::default()),
            Err(PartitionError::TooSmall { .. })
        ));
        assert!(matches!(
            module_placement(&hg, 0, &Default::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let hg = two_triangles();
        let a = module_placement(&hg, 2, &Default::default()).unwrap();
        let b = module_placement(&hg, 2, &Default::default()).unwrap();
        assert_eq!(a, b);
    }
}
