//! Clustering condensation — the §5 hybrid suggestion: "A hybrid
//! algorithm which uses clustering to condense the input before applying
//! the partitioning algorithm (such an approach is discussed by Bui et
//! al. and by Lengauer) is also promising."
//!
//! Coarsening is heavy-edge matching on the clique-model graph: each
//! module is paired with its strongest unmatched neighbor, roughly
//! halving the instance per level. Nets are projected onto clusters
//! (dropping nets that become internal to one cluster, which no partition
//! of clusters can cut), the condensed netlist is partitioned with
//! IG-Match, and the result is projected back to the flat modules.
//!
//! The condensed ratio-cut denominator counts clusters rather than
//! modules, so the condensed optimum is only an approximation of the flat
//! one; the final statistics are always evaluated on the flat netlist, and
//! the `hybrid` module of the facade crate adds FM polish on top.

use crate::{ig_match, IgMatchOptions, PartitionError, PartitionResult};
use np_netlist::{Bipartition, Hypergraph, HypergraphBuilder, ModuleId, Side};

/// One level of coarsening: the condensed netlist plus the module →
/// cluster projection.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The condensed hypergraph (one vertex per cluster).
    pub condensed: Hypergraph,
    /// `cluster_of[module]` = cluster index in the condensed netlist.
    pub cluster_of: Vec<u32>,
}

/// Coarsens `hg` by one level of heavy-edge matching on the clique-model
/// graph. Deterministic: modules are visited in index order and ties
/// break toward the smaller neighbor index.
///
/// Nets whose pins collapse into a single cluster are dropped (they can
/// never be cut by a cluster-respecting partition); all other nets
/// survive with their pins mapped to clusters, so the cut of a condensed
/// partition equals the cut of its flat projection.
///
/// # Panics
///
/// Panics if `hg` has no modules.
///
/// # Example
///
/// ```
/// use np_core::cluster::coarsen;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let c = coarsen(&hg);
/// assert!(c.condensed.num_modules() <= 2);
/// ```
pub fn coarsen(hg: &Hypergraph) -> Coarsening {
    let n = hg.num_modules();
    assert!(n > 0, "cannot coarsen an empty hypergraph");
    let adjacency = crate::models::clique_adjacency(hg);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for v in 0..n {
        if mate[v] != UNMATCHED {
            continue;
        }
        let (cols, vals) = adjacency.row(v);
        let mut best: Option<(u32, f64)> = None;
        for (&u, &w) in cols.iter().zip(vals) {
            if mate[u as usize] != UNMATCHED || u as usize == v {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            mate[v] = u;
            mate[u as usize] = v as u32;
        }
    }

    // assign cluster ids: pairs share one id, singletons get their own
    let mut cluster_of = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n {
        if cluster_of[v] != UNMATCHED {
            continue;
        }
        cluster_of[v] = next;
        if mate[v] != UNMATCHED {
            cluster_of[mate[v] as usize] = next;
        }
        next += 1;
    }

    let mut builder = HypergraphBuilder::new(next as usize);
    for net in hg.nets() {
        let pins: Vec<ModuleId> = hg
            .pins(net)
            .iter()
            .map(|m| ModuleId(cluster_of[m.index()]))
            .collect();
        // builder dedups; skip nets collapsing to a single cluster
        let first = pins[0];
        if pins[1..].iter().any(|&p| p != first) {
            builder.add_net(pins).expect("condensed net valid");
        }
    }
    Coarsening {
        condensed: builder.finish().expect("condensed hypergraph valid"),
        cluster_of,
    }
}

/// Options for [`clustered_ig_match`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterOptions {
    /// Number of coarsening levels (each roughly halves the instance).
    pub levels: usize,
    /// Options for the IG-Match run on the condensed netlist.
    pub ig_match: IgMatchOptions,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            levels: 1,
            ig_match: IgMatchOptions::default(),
        }
    }
}

/// Coarsens the netlist `opts.levels` times, partitions the condensed
/// instance with IG-Match, and projects the result back to the flat
/// modules.
///
/// # Errors
///
/// Propagates IG-Match errors on the condensed instance.
///
/// # Example
///
/// ```
/// use np_core::cluster::{clustered_ig_match, ClusterOptions};
/// use np_netlist::generate::{generate, GeneratorConfig};
///
/// let hg = generate(&GeneratorConfig::new(200, 220, 11));
/// let r = clustered_ig_match(&hg, &ClusterOptions::default())?;
/// assert!(r.ratio().is_finite());
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn clustered_ig_match(
    hg: &Hypergraph,
    opts: &ClusterOptions,
) -> Result<PartitionResult, PartitionError> {
    // compose the coarsening maps
    let mut current = hg.clone();
    let mut flat_to_coarse: Vec<u32> = (0..hg.num_modules() as u32).collect();
    for _ in 0..opts.levels {
        if current.num_modules() <= 4 {
            break;
        }
        let c = coarsen(&current);
        for f in flat_to_coarse.iter_mut() {
            *f = c.cluster_of[*f as usize];
        }
        current = c.condensed;
    }
    let out = ig_match(&current, &opts.ig_match)?;
    let sides = flat_to_coarse
        .iter()
        .map(|&c| out.result.partition.side(ModuleId(c)))
        .collect();
    let partition = Bipartition::from_sides(sides);
    Ok(PartitionResult::evaluate(
        hg,
        partition,
        "IG-Match/clustered",
        out.result.split_rank,
    ))
}

/// Checks that a flat partition respects a clustering (all modules of a
/// cluster on one side) — test helper exposed for the ablation binaries.
pub fn respects_clustering(partition: &Bipartition, cluster_of: &[u32]) -> bool {
    let mut side_of_cluster: Vec<Option<Side>> = vec![None; cluster_of.len()];
    for (m, &c) in cluster_of.iter().enumerate() {
        let s = partition.side(ModuleId(m as u32));
        match side_of_cluster[c as usize] {
            None => side_of_cluster[c as usize] = Some(s),
            Some(prev) if prev != s => return false,
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::hypergraph_from_nets;

    #[test]
    fn coarsen_halves_a_chain() {
        let hg = hypergraph_from_nets(
            6,
            &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5]],
        );
        let c = coarsen(&hg);
        assert_eq!(c.condensed.num_modules(), 3);
        // every module mapped
        assert!(c.cluster_of.iter().all(|&x| (x as usize) < 3));
    }

    #[test]
    fn internal_nets_dropped() {
        // net {0,1} collapses when 0 and 1 merge (they are each other's
        // heaviest neighbors)
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![0, 1], vec![1, 2], vec![2, 3]]);
        let c = coarsen(&hg);
        assert!(c.condensed.num_nets() < hg.num_nets());
    }

    #[test]
    fn condensed_cut_equals_flat_cut_for_respecting_partitions() {
        let hg = generate(&GeneratorConfig::new(120, 130, 21));
        let c = coarsen(&hg);
        // partition condensed clusters by parity, project to flat
        let flat = Bipartition::from_sides(
            c.cluster_of
                .iter()
                .map(|&cl| if cl % 2 == 0 { Side::Left } else { Side::Right })
                .collect(),
        );
        let condensed = Bipartition::from_sides(
            (0..c.condensed.num_modules() as u32)
                .map(|cl| if cl % 2 == 0 { Side::Left } else { Side::Right })
                .collect(),
        );
        assert_eq!(
            flat.cut_stats(&hg).cut_nets,
            condensed.cut_stats(&c.condensed).cut_nets
        );
    }

    #[test]
    fn clustered_partition_respects_clusters() {
        let hg = generate(&GeneratorConfig::new(150, 160, 5));
        let c = coarsen(&hg);
        let r = clustered_ig_match(
            &hg,
            &ClusterOptions {
                levels: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(respects_clustering(&r.partition, &c.cluster_of));
        assert_eq!(r.stats, r.partition.cut_stats(&hg));
    }

    #[test]
    fn multi_level_coarsening_shrinks_more() {
        let hg = generate(&GeneratorConfig::new(400, 420, 7));
        let one = coarsen(&hg);
        let two = coarsen(&one.condensed);
        assert!(two.condensed.num_modules() < one.condensed.num_modules());
        assert!(two.condensed.num_modules() >= hg.num_modules() / 5);
    }

    #[test]
    fn clustered_quality_reasonable_on_planted_instance() {
        // satellite instance: even after condensation the natural cut
        // should be found within 2x of the flat one
        let hg = generate(&GeneratorConfig::new(300, 320, 13).with_satellite(0.1, 3));
        let flat = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let clustered = clustered_ig_match(&hg, &ClusterOptions::default()).unwrap();
        assert!(
            clustered.ratio() <= flat.result.ratio() * 4.0 + 1e-9,
            "clustered {} vs flat {}",
            clustered.ratio(),
            flat.result.ratio()
        );
    }

    #[test]
    fn deterministic() {
        let hg = generate(&GeneratorConfig::new(200, 210, 3));
        let a = clustered_ig_match(&hg, &ClusterOptions::default()).unwrap();
        let b = clustered_ig_match(&hg, &ClusterOptions::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn respects_clustering_detects_violation() {
        let cluster_of = vec![0u32, 0, 1, 1];
        let good = Bipartition::from_sides(vec![Side::Left, Side::Left, Side::Right, Side::Right]);
        let bad = Bipartition::from_sides(vec![Side::Left, Side::Right, Side::Right, Side::Right]);
        assert!(respects_clustering(&good, &cluster_of));
        assert!(!respects_clustering(&bad, &cluster_of));
    }
}
