//! The EIG1 baseline: spectral module ordering + best-prefix ratio-cut
//! sweep (Hagen–Kahng \[13\], summarized in paper §1.1).
//!
//! The Fiedler vector of the clique-model Laplacian induces a linear
//! ordering `v_1 … v_n` of the modules; the algorithm evaluates every
//! splitting rank `r` (modules with rank `≤ r` on one side) and returns the
//! split with the best ratio cut. With the incremental
//! `CutTracker`-based incremental sweep costs
//! `O(pins)` on top of the eigensolve.

use crate::engine::RunContext;
use crate::ordering::{spectral_module_ordering, spectral_module_ordering_ctx};
use crate::{PartitionError, PartitionResult};
use np_eigen::LanczosOptions;
use np_netlist::partition::CutTracker;
use np_netlist::{Bipartition, Hypergraph, ModuleId, Side};

/// Options for [`eig1`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Eig1Options {
    /// Eigensolver options.
    pub lanczos: LanczosOptions,
}

/// Runs the EIG1 spectral ratio-cut heuristic.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] for fewer than 2 modules;
/// * [`PartitionError::Eigen`] if the eigensolve fails.
///
/// # Example
///
/// ```
/// use np_core::{eig1, Eig1Options};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let r = eig1(&hg, &Eig1Options::default())?;
/// assert_eq!(r.stats.cut_nets, 1);
/// assert_eq!(r.stats.areas(), "3:3");
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn eig1(hg: &Hypergraph, opts: &Eig1Options) -> Result<PartitionResult, PartitionError> {
    eig1_ctx(hg, opts, &RunContext::unlimited())
}

/// [`eig1`] against an execution context — the single implementation
/// behind every entry point. The eigensolve charges one
/// matvec-equivalent per operator application against the context's meter
/// and the prefix sweep checks the wall clock at every rank.
///
/// # Errors
///
/// The [`eig1`] errors plus [`PartitionError::Budget`] when the
/// context's meter reports a limit hit.
pub fn eig1_ctx(
    hg: &Hypergraph,
    opts: &Eig1Options,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    let order = spectral_module_ordering_ctx(hg, &opts.lanczos, ctx)?;
    sweep_module_ordering_ctx(hg, &order, "EIG1", ctx)
}

/// Evaluates every prefix split of a module ordering and returns the best
/// ratio-cut partition. Exposed for reuse (any module ordering — spectral
/// or otherwise — can be swept).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the modules of `hg` or has
/// fewer than 2 entries.
pub fn sweep_module_ordering(
    hg: &Hypergraph,
    order: &[ModuleId],
    algorithm: &'static str,
) -> PartitionResult {
    sweep_module_ordering_ctx(hg, order, algorithm, &RunContext::unlimited())
        .expect("unlimited meter never trips")
}

/// [`sweep_module_ordering`] against an execution context — the single
/// implementation behind every entry point. The context meter's wall
/// clock is checked once per splitting rank.
///
/// # Errors
///
/// [`PartitionError::Budget`] when the context's meter reports a limit
/// hit.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the modules of `hg` or has
/// fewer than 2 entries.
pub fn sweep_module_ordering_ctx(
    hg: &Hypergraph,
    order: &[ModuleId],
    algorithm: &'static str,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    assert_eq!(order.len(), hg.num_modules(), "ordering length mismatch");
    assert!(order.len() >= 2, "cannot sweep fewer than 2 modules");
    let meter = ctx.meter();
    let mut tracker = CutTracker::all_on(hg, Side::Right);
    let mut best_rank = 0usize;
    let mut best_ratio = f64::INFINITY;
    // move modules to the left one by one; after moving `r+1` modules the
    // split is (order[..=r] | order[r+1..])
    for (r, &m) in order[..order.len() - 1].iter().enumerate() {
        meter.check()?;
        tracker.move_module(m, Side::Left);
        let ratio = tracker.ratio();
        if ratio < best_ratio {
            best_ratio = ratio;
            best_rank = r;
        }
    }
    let partition =
        Bipartition::from_left_set(hg.num_modules(), order[..=best_rank].iter().copied());
    Ok(PartitionResult::evaluate(
        hg,
        partition,
        algorithm,
        Some(best_rank),
    ))
}

/// Spectral minimum-width bisection (paper §1.1's second formulation):
/// sweeps the spectral module ordering but only accepts splits whose left
/// block stays within `±tolerance·n/2` of perfect balance, minimizing the
/// *cut* (ties toward balance). This is the classic spectral-bisection
/// baseline the ratio-cut formulation relaxes.
///
/// # Errors
///
/// Same as [`eig1`]; additionally returns
/// [`PartitionError::Degenerate`] if the balance window admits no split
/// (only possible for `n < 2`).
///
/// # Example
///
/// ```
/// use np_core::eig1::{spectral_bisect, Eig1Options};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let r = spectral_bisect(&hg, 0.0, &Eig1Options::default())?;
/// assert_eq!(r.stats.areas(), "3:3");
/// assert_eq!(r.stats.cut_nets, 1);
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn spectral_bisect(
    hg: &Hypergraph,
    tolerance: f64,
    opts: &Eig1Options,
) -> Result<PartitionResult, PartitionError> {
    let order = spectral_module_ordering(hg, &opts.lanczos)?;
    let n = hg.num_modules();
    let half = n as f64 / 2.0;
    let slack = (tolerance * half).ceil() as i64 + 1;
    let min_left = ((half.floor() as i64) - slack).max(1) as usize;
    let max_left = (((half.ceil()) as i64) + slack).min(n as i64 - 1) as usize;

    let mut tracker = CutTracker::all_on(hg, Side::Right);
    let mut best: Option<(usize, usize, usize)> = None; // (cut, imbalance, rank)
    for (r, &m) in order[..n - 1].iter().enumerate() {
        tracker.move_module(m, Side::Left);
        let left = r + 1;
        if left < min_left || left > max_left {
            continue;
        }
        let cut = tracker.cut_nets();
        let imbalance = left.abs_diff(n - left);
        if best.is_none_or(|(bc, bi, _)| cut < bc || (cut == bc && imbalance < bi)) {
            best = Some((cut, imbalance, r));
        }
    }
    let (_, _, best_rank) = best.ok_or(PartitionError::Degenerate)?;
    let partition =
        Bipartition::from_left_set(hg.num_modules(), order[..=best_rank].iter().copied());
    Ok(PartitionResult::evaluate(
        hg,
        partition,
        "EIG1-bisect",
        Some(best_rank),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;
    use np_sparse::BudgetMeter;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn finds_the_bridge_cut() {
        let r = eig1(&two_triangles(), &Eig1Options::default()).unwrap();
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "3:3");
        assert_eq!(r.algorithm, "EIG1");
    }

    #[test]
    fn sweep_respects_given_ordering() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let order: Vec<ModuleId> = [0u32, 1, 2, 3].iter().map(|&i| ModuleId(i)).collect();
        let r = sweep_module_ordering(&hg, &order, "TEST");
        // best prefix of the path ordering is the middle split: cut 1, 2:2
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "2:2");
        assert_eq!(r.split_rank, Some(1));
    }

    #[test]
    fn sweep_handles_bad_ordering_gracefully() {
        // an adversarial interleaved ordering still returns *some* valid
        // partition with finite ratio
        let hg = two_triangles();
        let order: Vec<ModuleId> = [0u32, 3, 1, 4, 2, 5].iter().map(|&i| ModuleId(i)).collect();
        let r = sweep_module_ordering(&hg, &order, "TEST");
        assert!(r.ratio().is_finite());
        assert_eq!(r.stats.left + r.stats.right, 6);
        assert!(r.stats.left > 0 && r.stats.right > 0);
    }

    #[test]
    fn result_stats_consistent_with_partition() {
        let r = eig1(&two_triangles(), &Eig1Options::default()).unwrap();
        let recomputed = r.partition.cut_stats(&two_triangles());
        assert_eq!(r.stats, recomputed);
    }

    #[test]
    fn ctx_matches_plain_and_trips_on_zero_clock() {
        use np_sparse::Budget;
        use std::time::Duration;
        let hg = two_triangles();
        let plain = eig1(&hg, &Eig1Options::default()).unwrap();
        let meter = BudgetMeter::unlimited();
        let via_ctx = eig1_ctx(
            &hg,
            &Eig1Options::default(),
            &RunContext::with_meter(&meter),
        )
        .unwrap();
        assert_eq!(plain.partition, via_ctx.partition);
        assert!(meter.matvecs_used() > 0);
        let tight = RunContext::with_budget(&Budget::default().with_wall_clock(Duration::ZERO));
        assert!(matches!(
            eig1_ctx(&hg, &Eig1Options::default(), &tight),
            Err(PartitionError::Budget(_))
        ));
    }

    #[test]
    fn too_small_rejected() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        assert!(matches!(
            eig1(&hg, &Eig1Options::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "ordering length mismatch")]
    fn sweep_wrong_length_panics() {
        let hg = two_triangles();
        sweep_module_ordering(&hg, &[ModuleId(0)], "TEST");
    }

    #[test]
    fn bisect_finds_balanced_bridge_cut() {
        let r = spectral_bisect(&two_triangles(), 0.0, &Eig1Options::default()).unwrap();
        assert_eq!(r.stats.areas(), "3:3");
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.algorithm, "EIG1-bisect");
    }

    #[test]
    fn bisect_respects_balance_even_when_ratio_prefers_skew() {
        // satellite of 2 glued to a 6-clique: ratio cut prefers 2:6, the
        // bisection must stay near 4:4
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for i in 2..8u32 {
            for j in i + 1..8 {
                nets.push(vec![i, j]);
            }
        }
        nets.push(vec![0, 1]);
        nets.push(vec![1, 2]);
        let hg = hypergraph_from_nets(8, &nets);
        let bal = spectral_bisect(&hg, 0.0, &Eig1Options::default()).unwrap();
        assert!(
            bal.stats.left.abs_diff(bal.stats.right) <= 2,
            "{:?}",
            bal.stats
        );
        let ratio = eig1(&hg, &Eig1Options::default()).unwrap();
        assert_eq!(ratio.stats.areas(), "2:6");
    }

    #[test]
    fn bisect_loose_tolerance_approaches_ratio_quality() {
        let hg = two_triangles();
        let strict = spectral_bisect(&hg, 0.0, &Eig1Options::default()).unwrap();
        let loose = spectral_bisect(&hg, 1.0, &Eig1Options::default()).unwrap();
        assert!(loose.stats.cut_nets <= strict.stats.cut_nets);
    }
}
