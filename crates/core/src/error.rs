//! Error type for the partitioning algorithms.

use np_eigen::EigenError;
use std::error::Error;
use std::fmt;

/// Error produced by the spectral partitioning algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The underlying eigensolve failed.
    Eigen(EigenError),
    /// The instance is too small to bipartition (fewer than 2 modules or
    /// fewer than 2 nets where a net ordering is required).
    TooSmall {
        /// Number of modules in the instance.
        modules: usize,
        /// Number of nets in the instance.
        nets: usize,
    },
    /// No split of the spectral ordering produced a partition with two
    /// non-empty sides (e.g. a single net containing every module).
    Degenerate,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Eigen(e) => write!(f, "eigensolve failed: {e}"),
            PartitionError::TooSmall { modules, nets } => write!(
                f,
                "instance too small to bipartition ({modules} modules, {nets} nets)"
            ),
            PartitionError::Degenerate => {
                write!(f, "no split yields two non-empty sides")
            }
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Eigen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EigenError> for PartitionError {
    fn from(e: EigenError) -> Self {
        PartitionError::Eigen(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PartitionError::from(EigenError::TooSmall { dim: 1 });
        assert!(e.to_string().contains("eigensolve failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&PartitionError::Degenerate).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PartitionError>();
    }
}
