//! Error type for the partitioning algorithms.

use np_eigen::EigenError;
use np_sparse::BudgetExceeded;
use std::error::Error;
use std::fmt;

/// Error produced by the spectral partitioning algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The underlying eigensolve failed.
    Eigen(EigenError),
    /// The instance is too small to bipartition (fewer than 2 modules or
    /// fewer than 2 nets where a net ordering is required).
    TooSmall {
        /// Number of modules in the instance.
        modules: usize,
        /// Number of nets in the instance.
        nets: usize,
    },
    /// No split of the spectral ordering produced a partition with two
    /// non-empty sides (e.g. a single net containing every module).
    Degenerate,
    /// A cooperative resource budget ran out before a partition was
    /// produced. The payload carries the partial spend.
    Budget(BudgetExceeded),
    /// The caller supplied structurally invalid input (e.g. a net
    /// ordering that is not a permutation of the hypergraph's nets).
    InvalidInput {
        /// What was wrong with the input.
        reason: &'static str,
    },
    /// The algorithm panicked and the panic was contained at an isolation
    /// boundary (an `np-runner` portfolio attempt, a server request
    /// handler) instead of unwinding through the caller. The payload is
    /// the panic message, when one could be extracted.
    Panicked {
        /// The panic payload rendered as text (`"<non-string panic>"`
        /// when the payload was neither `&str` nor `String`).
        message: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Eigen(e) => write!(f, "eigensolve failed: {e}"),
            PartitionError::TooSmall { modules, nets } => write!(
                f,
                "instance too small to bipartition ({modules} modules, {nets} nets)"
            ),
            PartitionError::Degenerate => {
                write!(f, "no split yields two non-empty sides")
            }
            PartitionError::Budget(e) => write!(f, "{e}"),
            PartitionError::InvalidInput { reason } => {
                write!(f, "invalid input: {reason}")
            }
            PartitionError::Panicked { message } => {
                write!(f, "algorithm panicked: {message}")
            }
        }
    }
}

/// Renders a caught panic payload (from [`std::panic::catch_unwind`])
/// as a [`PartitionError::Panicked`]. Extracts `&str` and `String`
/// payloads — the two types `panic!` produces — and falls back to a
/// placeholder for exotic payloads.
pub fn panic_error(payload: Box<dyn std::any::Any + Send>) -> PartitionError {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    };
    PartitionError::Panicked { message }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Eigen(e) => Some(e),
            PartitionError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EigenError> for PartitionError {
    fn from(e: EigenError) -> Self {
        match e {
            // budget exhaustion inside an eigensolve is still budget
            // exhaustion of the attempt; keep one uniform variant
            EigenError::Budget(b) => PartitionError::Budget(b),
            other => PartitionError::Eigen(other),
        }
    }
}

impl From<BudgetExceeded> for PartitionError {
    fn from(e: BudgetExceeded) -> Self {
        PartitionError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_sparse::{Budget, BudgetMeter};

    #[test]
    fn display_and_source() {
        let e = PartitionError::from(EigenError::TooSmall { dim: 1 });
        assert!(e.to_string().contains("eigensolve failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&PartitionError::Degenerate).is_none());
    }

    #[test]
    fn budget_errors_unify() {
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(1));
        let exceeded = meter.charge(2).unwrap_err();
        let direct = PartitionError::from(exceeded);
        let via_eigen = PartitionError::from(EigenError::Budget(exceeded));
        assert_eq!(direct, via_eigen);
        assert!(direct.to_string().contains("matvec budget"));
        assert!(Error::source(&direct).is_some());
    }

    #[test]
    fn invalid_input_display() {
        let e = PartitionError::InvalidInput {
            reason: "net ordering is not a permutation",
        };
        assert!(e.to_string().contains("invalid input"));
    }

    #[test]
    fn panic_payloads_extract_str_and_string() {
        let e = panic_error(Box::new("boom"));
        assert_eq!(
            e,
            PartitionError::Panicked {
                message: "boom".into()
            }
        );
        assert!(e.to_string().contains("algorithm panicked: boom"));
        let e = panic_error(Box::new(String::from("formatted boom")));
        assert!(e.to_string().contains("formatted boom"));
        let e = panic_error(Box::new(42u32));
        assert!(e.to_string().contains("<non-string panic>"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PartitionError>();
    }
}
