//! Multi-way partitioning by recursive bipartition.
//!
//! The paper's introduction motivates bipartitioning as the engine of
//! hierarchical divide-and-conquer: layout synthesis, packaging, hardware
//! simulation and test all consume multi-block decompositions, and "a good
//! partitioning will minimize the number of signals between blocks that
//! are multiplexed onto a hardware simulator" (§1, citing Wei–Cheng).
//! This module recursively applies IG-Match until every block fits a size
//! budget, and provides the block-level I/O statistics those applications
//! care about.

use crate::{ig_match, IgMatchOptions, PartitionError};
use np_netlist::induce::induced_subhypergraph;
use np_netlist::{Hypergraph, ModuleId, Side};
use std::collections::BTreeSet;

/// Options for [`recursive_ig_match`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiwayOptions {
    /// Blocks at or below this size are not split further.
    pub max_block_size: usize,
    /// Options for each inner IG-Match run.
    pub ig_match: IgMatchOptions,
}

impl Default for MultiwayOptions {
    fn default() -> Self {
        MultiwayOptions {
            max_block_size: 256,
            ig_match: IgMatchOptions::default(),
        }
    }
}

/// A partition of the modules into `num_blocks` labelled blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiwayPartition {
    block_of: Vec<u32>,
    num_blocks: usize,
}

impl MultiwayPartition {
    /// Builds a multiway partition from an explicit block-label vector.
    ///
    /// # Panics
    ///
    /// Panics if the labels are not dense in `0..num_blocks`.
    pub fn from_labels(block_of: Vec<u32>) -> Self {
        let num_blocks = block_of.iter().map(|&b| b as usize + 1).max().unwrap_or(0);
        let mut seen = vec![false; num_blocks];
        for &b in &block_of {
            seen[b as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "block labels must be dense in 0..num_blocks"
        );
        MultiwayPartition {
            block_of,
            num_blocks,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Block label of `module`.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn block_of(&self, module: ModuleId) -> usize {
        self.block_of[module.index()] as usize
    }

    /// Module count of each block, indexed by label.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_blocks];
        for &b in &self.block_of {
            sizes[b as usize] += 1;
        }
        sizes
    }

    /// Number of nets spanning more than one block — for hardware
    /// simulation, the count of signals that must be multiplexed between
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `hg` has a different module count.
    pub fn crossing_nets(&self, hg: &Hypergraph) -> usize {
        assert_eq!(hg.num_modules(), self.block_of.len());
        hg.nets()
            .filter(|&n| {
                let pins = hg.pins(n);
                let first = self.block_of[pins[0].index()];
                pins[1..].iter().any(|p| self.block_of[p.index()] != first)
            })
            .count()
    }

    /// Per-block external-net counts: for each block, the number of nets
    /// with at least one pin inside and at least one pin outside it. This
    /// is the "number of inputs to a block" that drives test-vector cost
    /// (§1: "reducing the number of inputs to a block implies that fewer
    /// vectors will be needed to exercise the logic").
    pub fn external_nets_per_block(&self, hg: &Hypergraph) -> Vec<usize> {
        assert_eq!(hg.num_modules(), self.block_of.len());
        let mut counts = vec![0usize; self.num_blocks];
        let mut touched = BTreeSet::new();
        for net in hg.nets() {
            touched.clear();
            for p in hg.pins(net) {
                touched.insert(self.block_of[p.index()]);
            }
            if touched.len() > 1 {
                for &b in &touched {
                    counts[b as usize] += 1;
                }
            }
        }
        counts
    }

    /// Histogram of net *span* (how many blocks each net touches), indexed
    /// by span; entry `[1]` counts fully internal nets.
    pub fn span_histogram(&self, hg: &Hypergraph) -> Vec<usize> {
        assert_eq!(hg.num_modules(), self.block_of.len());
        let mut hist = vec![0usize; self.num_blocks + 1];
        let mut touched = BTreeSet::new();
        for net in hg.nets() {
            touched.clear();
            for p in hg.pins(net) {
                touched.insert(self.block_of[p.index()]);
            }
            hist[touched.len()] += 1;
        }
        hist
    }
}

/// Recursively bipartitions `hg` with IG-Match until every block has at
/// most `opts.max_block_size` modules. Blocks that cannot be split
/// (degenerate or too-small sub-instances) are kept whole.
///
/// # Errors
///
/// Propagates eigensolver failures from the top-level split; lower-level
/// failures terminate that branch's recursion gracefully.
///
/// # Example
///
/// ```
/// use np_core::multiway::{recursive_ig_match, MultiwayOptions};
/// use np_netlist::generate::{generate, GeneratorConfig};
///
/// let hg = generate(&GeneratorConfig::new(200, 220, 3));
/// let mw = recursive_ig_match(&hg, &MultiwayOptions {
///     max_block_size: 64,
///     ..Default::default()
/// })?;
/// assert!(mw.block_sizes().iter().all(|&s| s <= 64));
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn recursive_ig_match(
    hg: &Hypergraph,
    opts: &MultiwayOptions,
) -> Result<MultiwayPartition, PartitionError> {
    assert!(opts.max_block_size >= 1, "block size budget must be >= 1");
    let mut block_of = vec![0u32; hg.num_modules()];
    let mut next_block = 0u32;
    let all: Vec<ModuleId> = hg.modules().collect();
    split(hg, all, opts, &mut block_of, &mut next_block, true)?;
    Ok(MultiwayPartition {
        block_of,
        num_blocks: next_block as usize,
    })
}

fn split(
    hg: &Hypergraph,
    modules: Vec<ModuleId>,
    opts: &MultiwayOptions,
    block_of: &mut [u32],
    next_block: &mut u32,
    top_level: bool,
) -> Result<(), PartitionError> {
    let finalize = |modules: &[ModuleId], block_of: &mut [u32], next_block: &mut u32| {
        for m in modules {
            block_of[m.index()] = *next_block;
        }
        *next_block += 1;
    };
    if modules.len() <= opts.max_block_size {
        finalize(&modules, block_of, next_block);
        return Ok(());
    }
    let sub = induced_subhypergraph(hg, &modules);
    if sub.hypergraph.num_nets() < 2 {
        finalize(&modules, block_of, next_block);
        return Ok(());
    }
    match ig_match(&sub.hypergraph, &opts.ig_match) {
        Ok(out) => {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (local, &original) in sub.module_map.iter().enumerate() {
                match out.result.partition.side(ModuleId(local as u32)) {
                    Side::Left => left.push(original),
                    Side::Right => right.push(original),
                }
            }
            if left.is_empty() || right.is_empty() {
                finalize(&modules, block_of, next_block);
                return Ok(());
            }
            split(hg, left, opts, block_of, next_block, false)?;
            split(hg, right, opts, block_of, next_block, false)
        }
        Err(e) if top_level => Err(e),
        Err(_) => {
            finalize(&modules, block_of, next_block);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::hypergraph_from_nets;

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(300, 330, 0xABCD))
    }

    #[test]
    fn blocks_respect_size_budget() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 80,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mw.block_sizes().iter().all(|&s| s <= 80));
        assert_eq!(mw.block_sizes().iter().sum::<usize>(), 300);
        assert!(mw.num_blocks() >= 4);
    }

    #[test]
    fn block_labels_dense() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mw.block_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn crossing_consistent_with_span() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let hist = mw.span_histogram(&hg);
        let crossing: usize = hist[2..].iter().sum();
        assert_eq!(crossing, mw.crossing_nets(&hg));
        assert_eq!(hist.iter().sum::<usize>(), hg.num_nets());
    }

    #[test]
    fn external_counts_bound_by_crossing() {
        let hg = circuit();
        let mw = recursive_ig_match(&hg, &MultiwayOptions::default()).unwrap();
        let ext = mw.external_nets_per_block(&hg);
        let crossing = mw.crossing_nets(&hg);
        for &e in &ext {
            assert!(e <= crossing);
        }
    }

    #[test]
    fn single_block_when_budget_large() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mw.num_blocks(), 1);
        assert_eq!(mw.crossing_nets(&hg), 0);
    }

    #[test]
    fn from_labels_validates() {
        let mw = MultiwayPartition::from_labels(vec![0, 1, 1, 0, 2]);
        assert_eq!(mw.num_blocks(), 3);
        assert_eq!(mw.block_sizes(), vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_labels_rejected() {
        MultiwayPartition::from_labels(vec![0, 2]);
    }

    #[test]
    fn deterministic() {
        let hg = circuit();
        let opts = MultiwayOptions {
            max_block_size: 70,
            ..Default::default()
        };
        let a = recursive_ig_match(&hg, &opts).unwrap();
        let b = recursive_ig_match(&hg, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bipartition_case_matches_igmatch() {
        // budget slightly above half: exactly one split happens and the
        // multiway crossing equals the bipartition cut
        let hg = circuit();
        let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let small = out.result.stats.left.min(out.result.stats.right);
        let large = out.result.stats.left.max(out.result.stats.right);
        if small > 0 {
            let mw = recursive_ig_match(
                &hg,
                &MultiwayOptions {
                    max_block_size: large,
                    ..Default::default()
                },
            )
            .unwrap();
            if mw.num_blocks() == 2 {
                assert_eq!(mw.crossing_nets(&hg), out.result.stats.cut_nets);
            }
        }
    }
}
