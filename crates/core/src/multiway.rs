//! Multi-way partitioning by recursive bipartition.
//!
//! The paper's introduction motivates bipartitioning as the engine of
//! hierarchical divide-and-conquer: layout synthesis, packaging, hardware
//! simulation and test all consume multi-block decompositions, and "a good
//! partitioning will minimize the number of signals between blocks that
//! are multiplexed onto a hardware simulator" (§1, citing Wei–Cheng).
//! This module recursively applies IG-Match until every block fits a size
//! budget. The partition data model itself now lives in
//! [`np_netlist::kway`] — [`MultiwayPartition`] is an alias of
//! [`KwayPartition`], which carries the
//! block-level I/O statistics (crossing nets, per-block externals, span
//! histogram) these applications care about plus the incremental
//! [`KwayCutTracker`](np_netlist::KwayCutTracker) used by the balanced
//! k-way engine in [`crate::kway`].

use crate::{ig_match, IgMatchOptions, PartitionError};
use np_netlist::induce::induced_subhypergraph;
use np_netlist::{Hypergraph, KwayPartition, ModuleId, Side};

/// A partition of the modules into labelled blocks.
///
/// Since the k-way generalization this is the shared
/// [`np_netlist::KwayPartition`]; the alias keeps the original
/// `np_core::multiway::MultiwayPartition` path working.
pub type MultiwayPartition = KwayPartition;

/// Options for [`recursive_ig_match`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiwayOptions {
    /// Blocks at or below this size are not split further.
    pub max_block_size: usize,
    /// Options for each inner IG-Match run.
    pub ig_match: IgMatchOptions,
}

impl Default for MultiwayOptions {
    fn default() -> Self {
        MultiwayOptions {
            max_block_size: 256,
            ig_match: IgMatchOptions::default(),
        }
    }
}

/// Recursively bipartitions `hg` with IG-Match until every block has at
/// most `opts.max_block_size` modules. Blocks that cannot be split
/// (degenerate or too-small sub-instances) are kept whole.
///
/// # Errors
///
/// Propagates eigensolver failures from the top-level split; lower-level
/// failures terminate that branch's recursion gracefully.
///
/// # Example
///
/// ```
/// use np_core::multiway::{recursive_ig_match, MultiwayOptions};
/// use np_netlist::generate::{generate, GeneratorConfig};
///
/// let hg = generate(&GeneratorConfig::new(200, 220, 3));
/// let mw = recursive_ig_match(&hg, &MultiwayOptions {
///     max_block_size: 64,
///     ..Default::default()
/// })?;
/// assert!(mw.block_sizes().iter().all(|&s| s <= 64));
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn recursive_ig_match(
    hg: &Hypergraph,
    opts: &MultiwayOptions,
) -> Result<MultiwayPartition, PartitionError> {
    assert!(opts.max_block_size >= 1, "block size budget must be >= 1");
    let mut block_of = vec![0u32; hg.num_modules()];
    let mut next_block = 0u32;
    let all: Vec<ModuleId> = hg.modules().collect();
    split(hg, all, opts, &mut block_of, &mut next_block, true)?;
    Ok(KwayPartition::with_num_blocks(
        block_of,
        next_block as usize,
    ))
}

fn split(
    hg: &Hypergraph,
    modules: Vec<ModuleId>,
    opts: &MultiwayOptions,
    block_of: &mut [u32],
    next_block: &mut u32,
    top_level: bool,
) -> Result<(), PartitionError> {
    let finalize = |modules: &[ModuleId], block_of: &mut [u32], next_block: &mut u32| {
        for m in modules {
            block_of[m.index()] = *next_block;
        }
        *next_block += 1;
    };
    if modules.len() <= opts.max_block_size {
        finalize(&modules, block_of, next_block);
        return Ok(());
    }
    let sub = induced_subhypergraph(hg, &modules);
    if sub.hypergraph.num_nets() < 2 {
        finalize(&modules, block_of, next_block);
        return Ok(());
    }
    match ig_match(&sub.hypergraph, &opts.ig_match) {
        Ok(out) => {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (local, &original) in sub.module_map.iter().enumerate() {
                match out.result.partition.side(ModuleId(local as u32)) {
                    Side::Left => left.push(original),
                    Side::Right => right.push(original),
                }
            }
            if left.is_empty() || right.is_empty() {
                finalize(&modules, block_of, next_block);
                return Ok(());
            }
            split(hg, left, opts, block_of, next_block, false)?;
            split(hg, right, opts, block_of, next_block, false)
        }
        Err(e) if top_level => Err(e),
        Err(_) => {
            finalize(&modules, block_of, next_block);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::hypergraph_from_nets;

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(300, 330, 0xABCD))
    }

    #[test]
    fn blocks_respect_size_budget() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 80,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mw.block_sizes().iter().all(|&s| s <= 80));
        assert_eq!(mw.block_sizes().iter().sum::<usize>(), 300);
        assert!(mw.num_blocks() >= 4);
    }

    #[test]
    fn block_labels_dense() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mw.block_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn crossing_consistent_with_span() {
        let hg = circuit();
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let hist = mw.span_histogram(&hg);
        let crossing: usize = hist[2..].iter().sum();
        assert_eq!(crossing, mw.crossing_nets(&hg));
        assert_eq!(hist.iter().sum::<usize>(), hg.num_nets());
    }

    #[test]
    fn external_counts_bound_by_crossing() {
        let hg = circuit();
        let mw = recursive_ig_match(&hg, &MultiwayOptions::default()).unwrap();
        let ext = mw.external_nets_per_block(&hg);
        let crossing = mw.crossing_nets(&hg);
        for &e in &ext {
            assert!(e <= crossing);
        }
    }

    #[test]
    fn single_block_when_budget_large() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mw.num_blocks(), 1);
        assert_eq!(mw.crossing_nets(&hg), 0);
    }

    #[test]
    fn from_labels_validates() {
        let mw = MultiwayPartition::from_labels(vec![0, 1, 1, 0, 2]);
        assert_eq!(mw.num_blocks(), 3);
        assert_eq!(mw.block_sizes(), vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_labels_rejected() {
        MultiwayPartition::from_labels(vec![0, 2]);
    }

    #[test]
    fn empty_labels_yield_zero_blocks() {
        // Regression: `from_labels(vec![])` used to rely on the implicit
        // `max().unwrap_or(0)`; the shared model documents and preserves
        // the empty partition (`num_blocks == 0`).
        let mw = MultiwayPartition::from_labels(Vec::new());
        assert_eq!(mw.num_blocks(), 0);
        assert_eq!(mw.len(), 0);
        assert!(mw.block_sizes().is_empty());
    }

    #[test]
    fn deterministic() {
        let hg = circuit();
        let opts = MultiwayOptions {
            max_block_size: 70,
            ..Default::default()
        };
        let a = recursive_ig_match(&hg, &opts).unwrap();
        let b = recursive_ig_match(&hg, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bipartition_case_matches_igmatch() {
        // budget slightly above half: exactly one split happens and the
        // multiway crossing equals the bipartition cut
        let hg = circuit();
        let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let small = out.result.stats.left.min(out.result.stats.right);
        let large = out.result.stats.left.max(out.result.stats.right);
        if small > 0 {
            let mw = recursive_ig_match(
                &hg,
                &MultiwayOptions {
                    max_block_size: large,
                    ..Default::default()
                },
            )
            .unwrap();
            if mw.num_blocks() == 2 {
                assert_eq!(mw.crossing_nets(&hg), out.result.stats.cut_nets);
            }
        }
    }
}
