//! The Hagen–Kahng spectral lower bound on the optimal ratio cut
//! (paper §1.1, Theorem 1) — the "provability" property of the spectral
//! approach.
//!
//! Theorem 1 states that for a netlist *graph* with Laplacian `Q = D − A`,
//! the optimal ratio cut cost satisfies `c ≥ λ₂ / n`. Transferring the
//! bound to the hypergraph net-cut metric needs care: under the standard
//! `1/(k−1)` clique weighting a cut net contributes *at least* 1 to the
//! graph cut, so `λ₂/n` of that Laplacian bounds only the (larger) clique
//! cut. The *bound-preserving* weighting `1/(⌊k/2⌋·⌈k/2⌉)` makes every
//! net contribute `s(k−s)/(⌊k/2⌋⌈k/2⌉) ≤ 1`, so
//!
//! ```text
//!   graph-cut(U, W) ≤ net-cut(U, W)   for every bipartition,
//! ```
//!
//! and therefore `λ₂(Q_bp)/n` lower-bounds the optimal hypergraph ratio
//! cut. Comparing this certificate against an achieved partition bounds
//! the optimality gap of any heuristic — deterministically, with one
//! eigensolve.

use crate::models::clique::bound_preserving_laplacian;
use crate::PartitionError;
use np_eigen::{fiedler, LanczosOptions};
use np_netlist::Hypergraph;

/// A lower bound on the optimal hypergraph ratio cut, with the spectral
/// quantities it came from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioCutBound {
    /// The certified lower bound `λ₂ / n` on `cut/(|U|·|W|)`.
    pub bound: f64,
    /// The second-smallest eigenvalue of the bound-preserving clique
    /// Laplacian.
    pub lambda2: f64,
}

impl RatioCutBound {
    /// The optimality-gap factor of an achieved ratio-cut value
    /// (`achieved / bound`); `1.0` means certified optimal. Returns
    /// `f64::INFINITY` when the bound is zero (disconnected instances
    /// certify nothing).
    pub fn gap(&self, achieved: f64) -> f64 {
        if self.bound > 0.0 {
            achieved / self.bound
        } else {
            f64::INFINITY
        }
    }
}

/// Computes the Theorem-1 lower bound `λ₂(Q_bp)/n` on the optimal ratio
/// cut of `hg`, where `Q_bp` is the bound-preserving clique Laplacian.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] for fewer than 2 modules;
/// * [`PartitionError::Eigen`] if the eigensolve fails.
///
/// # Example
///
/// ```
/// use np_core::bounds::ratio_cut_lower_bound;
/// use np_core::{ig_match, IgMatchOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let bound = ratio_cut_lower_bound(&hg, &Default::default())?;
/// let achieved = ig_match(&hg, &IgMatchOptions::default())?.result.ratio();
/// assert!(achieved >= bound.bound - 1e-12); // Theorem 1
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn ratio_cut_lower_bound(
    hg: &Hypergraph,
    opts: &LanczosOptions,
) -> Result<RatioCutBound, PartitionError> {
    let n = hg.num_modules();
    if n < 2 {
        return Err(PartitionError::TooSmall {
            modules: n,
            nets: hg.num_nets(),
        });
    }
    let q = bound_preserving_laplacian(hg);
    let pair = fiedler(&q, opts)?;
    // numerical noise can push λ₂ microscopically negative on
    // disconnected graphs; clamp so the bound stays valid
    let lambda2 = pair.value.max(0.0);
    Ok(RatioCutBound {
        bound: lambda2 / n as f64,
        lambda2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ig_match, IgMatchOptions};
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId};

    #[test]
    fn bound_below_exhaustive_optimum_small() {
        // brute force the optimal hypergraph ratio cut on a small instance
        let hg = hypergraph_from_nets(
            7,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![5, 6],
                vec![0, 6],
                vec![1, 4],
            ],
        );
        let bound = ratio_cut_lower_bound(&hg, &Default::default()).unwrap();
        let n = hg.num_modules();
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) - 1 {
            let left = (0..n as u32).filter(|i| mask & (1 << i) != 0).map(ModuleId);
            let p = Bipartition::from_left_set(n, left);
            best = best.min(p.ratio_cut(&hg));
        }
        assert!(
            best >= bound.bound - 1e-9,
            "optimum {best} below bound {}",
            bound.bound
        );
        assert!(bound.bound > 0.0);
    }

    #[test]
    fn bound_holds_on_generated_circuit() {
        let hg = generate(&GeneratorConfig::new(200, 220, 77));
        let bound = ratio_cut_lower_bound(&hg, &Default::default()).unwrap();
        let achieved = ig_match(&hg, &IgMatchOptions::default())
            .unwrap()
            .result
            .ratio();
        assert!(achieved >= bound.bound - 1e-12);
        assert!(bound.gap(achieved) >= 1.0);
    }

    #[test]
    fn disconnected_instance_gives_zero_bound() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let bound = ratio_cut_lower_bound(&hg, &Default::default()).unwrap();
        assert!(bound.bound.abs() < 1e-9);
        assert_eq!(bound.gap(0.25), f64::INFINITY);
    }

    #[test]
    fn too_small_rejected() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        assert!(matches!(
            ratio_cut_lower_bound(&hg, &Default::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }
}
