//! Spectral linear orderings of modules and nets.
//!
//! Both the EIG1 baseline and the intersection-graph algorithms start the
//! same way: compute the Fiedler vector of a graph Laplacian derived from
//! the netlist and sort the vertices by their eigenvector component. For
//! EIG1 the vertices are *modules* (clique model); for IG-Vote and
//! IG-Match they are *nets* (intersection graph).

use crate::engine::RunContext;
use crate::models::IgWeighting;
use crate::PartitionError;
use np_eigen::{fiedler_metered, LanczosOptions};
use np_netlist::{Hypergraph, ModuleId, NetId};
use np_sparse::BudgetMeter;

/// Sorts indices `0..n` by the corresponding component of `vector`
/// (ties broken by index, so the ordering is fully deterministic).
///
/// Non-finite components are ordered by IEEE-754 `total_cmp` (−∞ < finite
/// < +∞ < NaN) rather than panicking; the eigensolvers reject non-finite
/// vectors before they reach this point, so this is a belt-and-braces
/// guarantee for external callers.
pub fn order_by_component(vector: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..vector.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        vector[a as usize]
            .total_cmp(&vector[b as usize])
            .then(a.cmp(&b))
    });
    idx
}

/// Spectral ordering of the *modules*, from the Fiedler vector of the
/// clique-model Laplacian (the EIG1 ordering of Hagen–Kahng \[13\]).
///
/// # Errors
///
/// Propagates eigensolver failures; returns
/// [`PartitionError::TooSmall`] for netlists with fewer than two modules.
pub fn spectral_module_ordering(
    hg: &Hypergraph,
    opts: &LanczosOptions,
) -> Result<Vec<ModuleId>, PartitionError> {
    spectral_module_ordering_ctx(hg, opts, &RunContext::unlimited())
}

/// [`spectral_module_ordering`] against an execution context — the single
/// implementation behind every entry point. Every matvec of the
/// eigensolve charges the context's meter; the Laplacian comes from the
/// context's operator cache (built once, shared with other runs holding
/// the same cache) and its matvecs shard over
/// [`ctx.threads()`](RunContext::threads). The ordering is bit-identical
/// for every thread count.
///
/// # Errors
///
/// The [`spectral_module_ordering`] errors plus
/// [`PartitionError::Budget`] when the meter trips.
pub fn spectral_module_ordering_ctx(
    hg: &Hypergraph,
    opts: &LanczosOptions,
    ctx: &RunContext<'_>,
) -> Result<Vec<ModuleId>, PartitionError> {
    if hg.num_modules() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let q = ctx.clique_laplacian(hg);
    let pair = fiedler_metered(&q.threaded(ctx.threads()), opts, ctx.meter())?;
    Ok(order_by_component(&pair.vector)
        .into_iter()
        .map(ModuleId)
        .collect())
}

/// Spectral ordering of the *nets*, from the Fiedler vector of the
/// intersection-graph Laplacian (paper §2.2).
///
/// # Errors
///
/// Propagates eigensolver failures; returns
/// [`PartitionError::TooSmall`] for netlists with fewer than two nets.
pub fn spectral_net_ordering(
    hg: &Hypergraph,
    weighting: IgWeighting,
    opts: &LanczosOptions,
) -> Result<Vec<NetId>, PartitionError> {
    spectral_net_ordering_ctx(hg, weighting, opts, &RunContext::unlimited())
}

/// [`spectral_net_ordering`] against an execution context — the single
/// implementation behind every entry point. Every matvec of the
/// eigensolve charges the context's meter; the Laplacian comes from the
/// context's operator cache and its matvecs shard over
/// [`ctx.threads()`](RunContext::threads). The ordering is bit-identical
/// for every thread count.
///
/// # Errors
///
/// The [`spectral_net_ordering`] errors plus [`PartitionError::Budget`]
/// when the meter trips.
pub fn spectral_net_ordering_ctx(
    hg: &Hypergraph,
    weighting: IgWeighting,
    opts: &LanczosOptions,
    ctx: &RunContext<'_>,
) -> Result<Vec<NetId>, PartitionError> {
    if hg.num_nets() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let q = ctx.intersection_laplacian(hg, weighting);
    let pair = fiedler_metered(&q.threaded(ctx.threads()), opts, ctx.meter())?;
    Ok(order_by_component(&pair.vector)
        .into_iter()
        .map(NetId)
        .collect())
}

/// Like [`spectral_net_ordering`], but sparsifies the intersection-graph
/// adjacency by dropping every edge of weight `< threshold` before the
/// eigensolve — the input-thresholding speedup from the paper's
/// conclusions ("The eigenvector computation can be sped up further by
/// additionally sparsifying the input through thresholding"). Note the
/// paper's own caveat (§2.2 footnote 2) that discarding connectivity can
/// also discard partitioning information; the ablation binary
/// `ablation_threshold` quantifies the trade-off.
///
/// Returns the ordering and the number of nonzeros dropped.
///
/// # Errors
///
/// Same as [`spectral_net_ordering`].
pub fn spectral_net_ordering_thresholded(
    hg: &Hypergraph,
    weighting: IgWeighting,
    threshold: f64,
    opts: &LanczosOptions,
) -> Result<(Vec<NetId>, usize), PartitionError> {
    if hg.num_nets() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let adjacency = crate::models::intersection_adjacency(hg, weighting);
    let sparsified = adjacency.drop_below(threshold);
    let dropped = adjacency.nnz() - sparsified.nnz();
    let q = np_sparse::Laplacian::from_adjacency(sparsified);
    let pair = fiedler_metered(&q, opts, &BudgetMeter::unlimited())?;
    Ok((
        order_by_component(&pair.vector)
            .into_iter()
            .map(NetId)
            .collect(),
        dropped,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    /// Two 4-cycles of modules joined by one bridge net.
    fn dumbbell() -> Hypergraph {
        hypergraph_from_nets(
            8,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 3],
                vec![4, 5],
                vec![5, 6],
                vec![6, 7],
                vec![4, 7],
                vec![3, 4],
            ],
        )
    }

    #[test]
    fn order_by_component_stable() {
        let v = [0.3, -1.0, 0.3, 0.0];
        assert_eq!(order_by_component(&v), vec![1, 3, 0, 2]);
    }

    #[test]
    fn order_by_component_total_on_non_finite() {
        // −∞ < finite < +∞ < NaN, deterministically, instead of a panic
        let v = [f64::NAN, 1.0, f64::NEG_INFINITY, f64::INFINITY, 0.0];
        assert_eq!(order_by_component(&v), vec![2, 4, 1, 3, 0]);
    }

    #[test]
    fn ctx_ordering_matches_plain() {
        let hg = dumbbell();
        let plain = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        let meter = np_sparse::BudgetMeter::unlimited();
        let ctx = RunContext::with_meter(&meter);
        let via_ctx =
            spectral_net_ordering_ctx(&hg, IgWeighting::Paper, &Default::default(), &ctx).unwrap();
        assert_eq!(plain, via_ctx);
        assert!(meter.matvecs_used() > 0);
    }

    #[test]
    fn module_ordering_separates_clusters() {
        let hg = dumbbell();
        let order = spectral_module_ordering(&hg, &Default::default()).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 8];
            for (rank, m) in order.iter().enumerate() {
                p[m.index()] = rank;
            }
            p
        };
        // all of {0,1,2,3} on one end, {4,5,6,7} on the other
        let left_max = (0..4).map(|i| pos[i]).max().unwrap();
        let right_min = (4..8).map(|i| pos[i]).min().unwrap();
        let ok_forward = left_max < right_min;
        let right_max = (4..8).map(|i| pos[i]).max().unwrap();
        let left_min = (0..4).map(|i| pos[i]).min().unwrap();
        let ok_backward = right_max < left_min;
        assert!(ok_forward || ok_backward, "positions {pos:?}");
    }

    #[test]
    fn net_ordering_puts_bridge_between_clusters() {
        let hg = dumbbell();
        let order = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        let rank_of = |n: u32| order.iter().position(|&x| x.0 == n).unwrap();
        // bridge net (index 8) should separate cluster-A nets (0..4) from
        // cluster-B nets (4..8)
        let bridge = rank_of(8);
        let a_ranks: Vec<usize> = (0..4).map(rank_of).collect();
        let b_ranks: Vec<usize> = (4..8).map(rank_of).collect();
        let a_side = a_ranks.iter().all(|&r| r < bridge);
        let b_side = b_ranks.iter().all(|&r| r > bridge);
        let a_side_rev = a_ranks.iter().all(|&r| r > bridge);
        let b_side_rev = b_ranks.iter().all(|&r| r < bridge);
        assert!(
            (a_side && b_side) || (a_side_rev && b_side_rev),
            "bridge at {bridge}, A {a_ranks:?}, B {b_ranks:?}"
        );
    }

    #[test]
    fn too_small_instances_rejected() {
        let hg = hypergraph_from_nets(1, &[vec![0]]);
        assert!(matches!(
            spectral_module_ordering(&hg, &Default::default()),
            Err(PartitionError::TooSmall { .. })
        ));
        assert!(matches!(
            spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    fn orderings_are_permutations() {
        let hg = dumbbell();
        let mo = spectral_module_ordering(&hg, &Default::default()).unwrap();
        let mut m: Vec<u32> = mo.iter().map(|x| x.0).collect();
        m.sort_unstable();
        assert_eq!(m, (0..8).collect::<Vec<_>>());
        let no = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        let mut n: Vec<u32> = no.iter().map(|x| x.0).collect();
        n.sort_unstable();
        assert_eq!(n, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let hg = dumbbell();
        let a = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        let b = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thresholded_ordering_zero_threshold_matches_plain() {
        let hg = dumbbell();
        let plain = spectral_net_ordering(&hg, IgWeighting::Paper, &Default::default()).unwrap();
        let (thresh, dropped) =
            spectral_net_ordering_thresholded(&hg, IgWeighting::Paper, 0.0, &Default::default())
                .unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(plain, thresh);
    }

    #[test]
    fn thresholded_ordering_drops_weak_edges() {
        let hg = dumbbell();
        let (order, dropped) =
            spectral_net_ordering_thresholded(&hg, IgWeighting::Paper, 0.8, &Default::default())
                .unwrap();
        assert!(dropped > 0);
        assert_eq!(order.len(), hg.num_nets());
        let mut sorted: Vec<u32> = order.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..hg.num_nets() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn extreme_threshold_still_yields_ordering() {
        // dropping everything leaves the zero Laplacian: λ2 = 0 and an
        // arbitrary (but valid and deterministic) ordering
        let hg = dumbbell();
        let (order, dropped) =
            spectral_net_ordering_thresholded(&hg, IgWeighting::Paper, 1e9, &Default::default())
                .unwrap();
        assert_eq!(order.len(), hg.num_nets());
        assert!(dropped > 0);
    }
}
