//! The standard weighted clique net model.

use np_netlist::{Hypergraph, NetId};
use np_sparse::{CsrMatrix, Laplacian, TripletBuilder};

/// Pushes the clique-model triplets of nets `lo..hi` into `b`, weighting
/// each `k`-pin net's pairs by `weight(k)`. Nets with `k < 2` contribute
/// nothing — a single-pin net spans no pair, and a `1/(k−1)`-style weight
/// would be non-finite for it.
fn clique_triplets(
    hg: &Hypergraph,
    lo: usize,
    hi: usize,
    weight: fn(usize) -> f64,
    b: &mut TripletBuilder,
) {
    for net in lo..hi {
        let pins = hg.pins(NetId(net as u32));
        let k = pins.len();
        if k < 2 {
            continue;
        }
        let w = weight(k);
        for i in 0..k {
            for j in i + 1..k {
                b.push_sym(pins[i].index(), pins[j].index(), w);
            }
        }
    }
}

fn standard_weight(k: usize) -> f64 {
    1.0 / (k as f64 - 1.0)
}

fn bound_preserving_weight(k: usize) -> f64 {
    1.0 / ((k / 2) as f64 * k.div_ceil(2) as f64)
}

/// Builds the module-adjacency matrix of the netlist under the standard
/// weighted clique model: each `k`-pin net (`k ≥ 2`) adds `1/(k−1)` to
/// `A_ij` for every pair of its pins. Single-pin nets contribute nothing.
///
/// With this normalization every net contributes exactly
/// `(k−1)·1/(k−1) = 1` to the weighted degree of each of its pins, so a
/// module's degree in the clique graph equals its net count in the
/// hypergraph — the "fairness" property of the standard model.
///
/// # Example
///
/// ```
/// use np_core::models::clique_adjacency;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(3, &[vec![0, 1, 2]]);
/// let a = clique_adjacency(&hg);
/// assert_eq!(a.nnz(), 6); // 3 pairs, stored symmetrically
/// assert!((a.get(0, 1) - 0.5).abs() < 1e-12); // 1/(3-1)
/// ```
pub fn clique_adjacency(hg: &Hypergraph) -> CsrMatrix {
    clique_adjacency_threaded(hg, 1)
}

/// [`clique_adjacency`] with the net range sharded over `threads` OS
/// threads (`0` = all available cores).
///
/// Each shard fills its own triplet builder over a contiguous net chunk
/// and the chunks are merged in net order, so the result is
/// **bit-identical** to the serial build for every thread count (the
/// determinism contract of `models::build_sharded`).
pub fn clique_adjacency_threaded(hg: &Hypergraph, threads: usize) -> CsrMatrix {
    super::build_sharded(hg.num_modules(), hg.num_nets(), threads, |lo, hi, b| {
        clique_triplets(hg, lo, hi, standard_weight, b)
    })
}

/// The Laplacian `Q = D − A` of the clique-model graph; its Fiedler vector
/// drives the EIG1 baseline.
pub fn clique_laplacian(hg: &Hypergraph) -> Laplacian {
    Laplacian::from_adjacency(clique_adjacency(hg))
}

/// Builds the module-adjacency matrix under the *bound-preserving* clique
/// weighting: a `k`-pin net adds `1/(⌊k/2⌋·⌈k/2⌉)` to each of its module
/// pairs.
///
/// With this weighting a net split `s : k−s` contributes
/// `s(k−s)/(⌊k/2⌋·⌈k/2⌉) ≤ 1` to the weighted graph cut, so the graph cut
/// *under-estimates* the net cut for every bipartition — which is what
/// makes `λ₂/n` of the resulting Laplacian a valid lower bound on the
/// optimal hypergraph ratio cut (see [`bounds`](crate::bounds)).
///
/// # Example
///
/// ```
/// use np_core::models::clique::bound_preserving_adjacency;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1, 2, 3]]);
/// let a = bound_preserving_adjacency(&hg);
/// assert!((a.get(0, 1) - 0.25).abs() < 1e-12); // 1/(2·2)
/// ```
pub fn bound_preserving_adjacency(hg: &Hypergraph) -> CsrMatrix {
    bound_preserving_adjacency_threaded(hg, 1)
}

/// [`bound_preserving_adjacency`] with the net range sharded over
/// `threads` OS threads (`0` = all cores); bit-identical to the serial
/// build for every thread count.
pub fn bound_preserving_adjacency_threaded(hg: &Hypergraph, threads: usize) -> CsrMatrix {
    super::build_sharded(hg.num_modules(), hg.num_nets(), threads, |lo, hi, b| {
        clique_triplets(hg, lo, hi, bound_preserving_weight, b)
    })
}

/// The Laplacian of the bound-preserving clique graph (see
/// [`bound_preserving_adjacency`]).
pub fn bound_preserving_laplacian(hg: &Hypergraph) -> Laplacian {
    Laplacian::from_adjacency(bound_preserving_adjacency(hg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    #[test]
    fn two_pin_net_weight_one() {
        let hg = hypergraph_from_nets(2, &[vec![0, 1]]);
        let a = clique_adjacency(&hg);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn k_pin_net_generates_k_choose_2_pairs() {
        let hg = hypergraph_from_nets(5, &[vec![0, 1, 2, 3, 4]]);
        let a = clique_adjacency(&hg);
        assert_eq!(a.nnz(), 2 * 10); // C(5,2) pairs symmetric
        assert!((a.get(0, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overlapping_nets_accumulate() {
        let hg = hypergraph_from_nets(2, &[vec![0, 1], vec![0, 1]]);
        let a = clique_adjacency(&hg);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    fn single_pin_net_ignored() {
        let hg = hypergraph_from_nets(2, &[vec![0], vec![0, 1]]);
        let a = clique_adjacency(&hg);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn degrees_equal_module_net_counts() {
        // with the 1/(k-1) normalization each net contributes exactly 1 to
        // the degree of each of its pins
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![1, 2, 3], vec![0, 3]]);
        let q = clique_laplacian(&hg);
        for m in hg.modules() {
            let expect = hg.degree(m) as f64;
            assert!(
                (q.degrees()[m.index()] - expect).abs() < 1e-12,
                "module {m}: {} vs {expect}",
                q.degrees()[m.index()]
            );
        }
    }

    #[test]
    fn adjacency_symmetric() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1, 2, 3], vec![2, 3, 4], vec![4, 5]]);
        assert!(clique_adjacency(&hg).is_symmetric(1e-12));
    }

    #[test]
    fn single_pin_net_laplacian_stays_finite() {
        // regression: a k=1 net must not feed 1/(k−1) = ∞ into the model;
        // the weights, degrees and quadratic form all stay finite
        let hg = hypergraph_from_nets(3, &[vec![0], vec![1], vec![0, 1, 2]]);
        for a in [clique_adjacency(&hg), bound_preserving_adjacency(&hg)] {
            for r in 0..3 {
                assert!(a.row(r).1.iter().all(|w| w.is_finite()));
            }
        }
        let q = clique_laplacian(&hg);
        assert!(q.degrees().iter().all(|d| d.is_finite()));
        assert!(q.quadratic_form(&[1.0, -2.0, 0.5]).is_finite());
    }

    #[test]
    fn threaded_build_bit_identical() {
        let hg = hypergraph_from_nets(
            8,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![3],
                vec![3, 4, 5, 6],
                vec![6, 7],
                vec![0, 7],
                vec![1, 4, 6],
            ],
        );
        let serial = clique_adjacency(&hg);
        let serial_bp = bound_preserving_adjacency(&hg);
        for threads in [1usize, 2, 8] {
            assert_eq!(clique_adjacency_threaded(&hg, threads), serial);
            assert_eq!(bound_preserving_adjacency_threaded(&hg, threads), serial_bp);
        }
    }
}
