//! Graph representations ("net models") of the netlist hypergraph.
//!
//! Spectral methods need a *graph*, but circuits are hypergraphs; the
//! choice of net model decides what the eigenvector sees. Two models are
//! implemented:
//!
//! * [`clique`] — the standard weighted clique model: a `k`-pin net
//!   contributes `1/(k−1)` to each of the `C(k,2)` module pairs it spans.
//!   Simple and symmetric, but a 100-pin clock net generates 4950
//!   nonzeros, "negating the effectiveness of such sparse operator methods
//!   as the Lanczos technique" (paper §2.1);
//! * [`intersection`] — the paper's dual representation: one vertex per
//!   *net*, an edge wherever two nets share a module, weighted to discount
//!   overlaps through large nets and high-degree modules (§2.2). Roughly an
//!   order of magnitude sparser on netlists with wide nets.

pub mod clique;
pub mod intersection;

pub use clique::{clique_adjacency, clique_adjacency_threaded, clique_laplacian};
pub use intersection::{
    intersection_adjacency, intersection_adjacency_threaded, intersection_laplacian,
    intersection_neighbors, IgWeighting,
};

use np_sparse::{resolve_threads, shard_ranges, CsrMatrix, TripletBuilder};

/// Assembles a CSR matrix by sharding a source-item range `0..items`
/// (nets for the clique model, modules for the intersection graph) into
/// contiguous chunks, filling one [`TripletBuilder`] per chunk — in
/// parallel when `threads > 1` — and appending the per-chunk builders in
/// chunk order.
///
/// Because `fill(lo, hi, b)` pushes triplets in the same order a serial
/// pass over `lo..hi` would, and chunks are appended in range order, the
/// merged triplet sequence is identical to one serial pass over
/// `0..items` — so the resulting CSR is **bit-identical** to the serial
/// build for every thread count (duplicate summing in
/// [`TripletBuilder::into_csr`] happens in the same entry order).
fn build_sharded<F>(dim: usize, items: usize, threads: usize, fill: F) -> CsrMatrix
where
    F: Fn(usize, usize, &mut TripletBuilder) + Sync,
{
    let ranges = shard_ranges(items, resolve_threads(threads));
    if ranges.len() <= 1 {
        let mut b = TripletBuilder::new(dim);
        if let Some(&(lo, hi)) = ranges.first() {
            fill(lo, hi, &mut b);
        }
        return b.into_csr();
    }
    let fill = &fill;
    let parts: Vec<TripletBuilder> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let mut b = TripletBuilder::new(dim);
                    fill(lo, hi, &mut b);
                    b
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("builder shard panicked"))
            .collect()
    });
    let mut merged = TripletBuilder::new(dim);
    for part in parts {
        merged.append(part);
    }
    merged.into_csr()
}
