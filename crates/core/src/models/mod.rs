//! Graph representations ("net models") of the netlist hypergraph.
//!
//! Spectral methods need a *graph*, but circuits are hypergraphs; the
//! choice of net model decides what the eigenvector sees. Two models are
//! implemented:
//!
//! * [`clique`] — the standard weighted clique model: a `k`-pin net
//!   contributes `1/(k−1)` to each of the `C(k,2)` module pairs it spans.
//!   Simple and symmetric, but a 100-pin clock net generates 4950
//!   nonzeros, "negating the effectiveness of such sparse operator methods
//!   as the Lanczos technique" (paper §2.1);
//! * [`intersection`] — the paper's dual representation: one vertex per
//!   *net*, an edge wherever two nets share a module, weighted to discount
//!   overlaps through large nets and high-degree modules (§2.2). Roughly an
//!   order of magnitude sparser on netlists with wide nets.

pub mod clique;
pub mod intersection;

pub use clique::{clique_adjacency, clique_laplacian};
pub use intersection::{
    intersection_adjacency, intersection_laplacian, intersection_neighbors, IgWeighting,
};
