//! The intersection graph (dual) representation of the netlist.
//!
//! Given the netlist hypergraph `H = (V', E')` with `m` nets, the
//! intersection graph `G'` has one vertex per net and an edge `{s_a, s_b}`
//! whenever the two nets share at least one module (paper §2.2, Figure 1).
//! The paper's edge weighting, over the `q` shared modules `v_1..v_q`:
//!
//! ```text
//!     A'_ab = Σ_{k=1..q}  1/(d_k − 1) · (1/|s_a| + 1/|s_b|)
//! ```
//!
//! where `d_k` is the hypergraph degree of shared module `v_k`. Overlaps
//! between large nets, and overlaps through promiscuous (high-degree)
//! modules, are discounted.
//!
//! The paper reports that several weighting variants give "extremely
//! similar, high-quality" results; [`IgWeighting`] exposes the variants so
//! the claim can be tested (ablation experiment E10 in `DESIGN.md`).

use np_netlist::{Hypergraph, ModuleId};
use np_sparse::{CsrMatrix, Laplacian, TripletBuilder};

/// Pushes, for every module in `lo..hi`, its `C(d,2)` net pairs into `b`
/// under the Paper/SizeScaled weighting. Modules of degree `< 2` span no
/// pair (and under [`IgWeighting::Paper`] a `1/(d−1)` factor would be
/// non-finite for them), so they contribute nothing.
fn weighted_pair_triplets(
    hg: &Hypergraph,
    lo: usize,
    hi: usize,
    weighting: IgWeighting,
    b: &mut TripletBuilder,
) {
    for module in lo..hi {
        let nets = hg.nets_of(ModuleId(module as u32));
        let d = nets.len();
        if d < 2 {
            continue;
        }
        let degree_factor = match weighting {
            IgWeighting::Paper => 1.0 / (d as f64 - 1.0),
            _ => 1.0,
        };
        for i in 0..d {
            let size_i = hg.net_size(nets[i]) as f64;
            for j in i + 1..d {
                let size_j = hg.net_size(nets[j]) as f64;
                let w = degree_factor * (1.0 / size_i + 1.0 / size_j);
                b.push_sym(nets[i].index(), nets[j].index(), w);
            }
        }
    }
}

/// Pushes a unit count for every net pair meeting at a module in
/// `lo..hi` (the accumulation pass shared by Uniform and SharedCount).
fn count_pair_triplets(hg: &Hypergraph, lo: usize, hi: usize, b: &mut TripletBuilder) {
    for module in lo..hi {
        let nets = hg.nets_of(ModuleId(module as u32));
        for i in 0..nets.len() {
            for j in i + 1..nets.len() {
                b.push_sym(nets[i].index(), nets[j].index(), 1.0);
            }
        }
    }
}

/// Debug-time check of the intersection graph's structural invariant: a
/// net never intersects itself, so `A'` must have an empty diagonal.
/// `HypergraphBuilder` dedupes each net's pin list, which is what makes
/// every `nets_of` list duplicate-free and this assertion hold; it would
/// catch a regression that reintroduces duplicate pins.
fn debug_assert_no_self_loops(a: &CsrMatrix, num_nets: usize) {
    if cfg!(debug_assertions) {
        for r in 0..num_nets {
            debug_assert!(
                a.get(r, r) == 0.0,
                "intersection graph has a self-loop at net {r}"
            );
        }
    }
}

/// Edge-weighting scheme for the intersection graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IgWeighting {
    /// The paper's weighting:
    /// `Σ_k 1/(d_k−1) · (1/|s_a| + 1/|s_b|)` over shared modules.
    #[default]
    Paper,
    /// Unit weight for every intersecting pair of nets.
    Uniform,
    /// Weight = number of shared modules.
    SharedCount,
    /// Weight = `Σ_k (1/|s_a| + 1/|s_b|)`: size-discounted but without the
    /// module-degree factor.
    SizeScaled,
}

impl IgWeighting {
    /// All implemented variants, for ablation sweeps.
    pub const ALL: [IgWeighting; 4] = [
        IgWeighting::Paper,
        IgWeighting::Uniform,
        IgWeighting::SharedCount,
        IgWeighting::SizeScaled,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IgWeighting::Paper => "paper",
            IgWeighting::Uniform => "uniform",
            IgWeighting::SharedCount => "shared-count",
            IgWeighting::SizeScaled => "size-scaled",
        }
    }
}

/// Builds the weighted adjacency matrix `A'` of the intersection graph.
///
/// The matrix is `m × m` for `m = hg.num_nets()`. Construction enumerates,
/// for every module of degree `d ≥ 2`, the `C(d,2)` pairs of nets meeting
/// at that module — `O(Σ_v d_v²)` total, which is small because module
/// degrees are bounded by technology fanout limits.
///
/// Note that for [`IgWeighting::Uniform`] the entry for a pair sharing
/// several modules is still `1.0` (the weight is per *pair*, not per
/// shared module).
///
/// # Example
///
/// ```
/// use np_core::models::{intersection_adjacency, IgWeighting};
/// use np_netlist::hypergraph_from_nets;
///
/// // nets n0={0,1}, n1={1,2}: share module 1, which has degree 2
/// let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
/// let a = intersection_adjacency(&hg, IgWeighting::Paper);
/// // A'_01 = 1/(2-1) · (1/2 + 1/2) = 1
/// assert!((a.get(0, 1) - 1.0).abs() < 1e-12);
/// ```
pub fn intersection_adjacency(hg: &Hypergraph, weighting: IgWeighting) -> CsrMatrix {
    intersection_adjacency_threaded(hg, weighting, 1)
}

/// [`intersection_adjacency`] with the module range sharded over
/// `threads` OS threads (`0` = all available cores).
///
/// Each shard enumerates the net pairs of a contiguous module chunk into
/// its own triplet builder; the chunks are merged in module order, so the
/// accumulated weights are **bit-identical** to the serial build for
/// every thread count (same entry order into the duplicate-summing CSR
/// conversion — the determinism contract of `models::build_sharded`).
pub fn intersection_adjacency_threaded(
    hg: &Hypergraph,
    weighting: IgWeighting,
    threads: usize,
) -> CsrMatrix {
    let (m, modules) = (hg.num_nets(), hg.num_modules());
    let a = match weighting {
        IgWeighting::Paper | IgWeighting::SizeScaled => {
            super::build_sharded(m, modules, threads, |lo, hi, b| {
                weighted_pair_triplets(hg, lo, hi, weighting, b)
            })
        }
        IgWeighting::Uniform | IgWeighting::SharedCount => {
            // accumulate shared-module counts (sharded), then post-process
            let counts = super::build_sharded(m, modules, threads, |lo, hi, b| {
                count_pair_triplets(hg, lo, hi, b)
            });
            if weighting == IgWeighting::Uniform {
                // collapse accumulated counts back to 1.0 per pair
                let mut b2 = TripletBuilder::new(m);
                for r in 0..m {
                    let (cols, _) = counts.row(r);
                    for &c in cols {
                        if (c as usize) > r {
                            b2.push_sym(r, c as usize, 1.0);
                        }
                    }
                }
                b2.into_csr()
            } else {
                counts
            }
        }
    };
    debug_assert_no_self_loops(&a, m);
    a
}

/// The Laplacian `Q' = D' − A'` of the intersection graph; its Fiedler
/// vector gives the net ordering for IG-Vote and IG-Match.
pub fn intersection_laplacian(hg: &Hypergraph, weighting: IgWeighting) -> Laplacian {
    Laplacian::from_adjacency(intersection_adjacency(hg, weighting))
}

/// Unweighted adjacency lists of the intersection graph: for each net, the
/// sorted list of other nets sharing at least one module with it.
///
/// This is the structure the IG-Match bipartite machinery works on — the
/// conflict edges of a split are exactly the intersection-graph edges that
/// cross it, independent of any weighting (paper §3).
pub fn intersection_neighbors(hg: &Hypergraph) -> Vec<Vec<u32>> {
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); hg.num_nets()];
    for module in hg.modules() {
        let nets = hg.nets_of(module);
        for i in 0..nets.len() {
            for j in i + 1..nets.len() {
                neighbors[nets[i].index()].push(nets[j].0);
                neighbors[nets[j].index()].push(nets[i].0);
            }
        }
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }
    neighbors
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    /// The 6-net example of paper Figure 1 cannot be reproduced exactly
    /// (the figure is an image), but its defining property can: the
    /// weighting formula, checked entry by entry on a hand example.
    fn hand_example() -> Hypergraph {
        // modules 0..5
        // n0 = {0,1,2}, n1 = {2,3}, n2 = {3,4,5}, n3 = {0,5}
        hypergraph_from_nets(6, &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]])
    }

    #[test]
    fn paper_weighting_formula() {
        let hg = hand_example();
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        // n0 ∩ n1 = {2}; d(2) = 2; |n0| = 3, |n1| = 2
        let expect01 = 1.0 / (2.0 - 1.0) * (1.0 / 3.0 + 1.0 / 2.0);
        assert!((a.get(0, 1) - expect01).abs() < 1e-12);
        // n1 ∩ n2 = {3}; d(3) = 2; |n1| = 2, |n2| = 3
        let expect12 = 1.0 * (1.0 / 2.0 + 1.0 / 3.0);
        assert!((a.get(1, 2) - expect12).abs() < 1e-12);
        // n0 ∩ n2 = ∅
        assert_eq!(a.get(0, 2), 0.0);
        // n0 ∩ n3 = {0}; d(0) = 2
        let expect03 = 1.0 * (1.0 / 3.0 + 1.0 / 2.0);
        assert!((a.get(0, 3) - expect03).abs() < 1e-12);
    }

    #[test]
    fn multiple_shared_modules_sum() {
        // n0 = {0,1,2}, n1 = {0,1,3}: share modules 0 and 1, both degree 2
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let per_module = 1.0 * (1.0 / 3.0 + 1.0 / 3.0);
        assert!((a.get(0, 1) - 2.0 * per_module).abs() < 1e-12);
    }

    #[test]
    fn high_degree_module_discounted() {
        // module 0 belongs to 3 nets: pairs through it get factor 1/2
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let expect = (1.0 / 2.0) * (1.0 / 2.0 + 1.0 / 2.0);
        assert!((a.get(0, 1) - expect).abs() < 1e-12);
        assert!((a.get(1, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_weighting_is_zero_one() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3], vec![3, 2]]);
        let a = intersection_adjacency(&hg, IgWeighting::Uniform);
        assert_eq!(a.get(0, 1), 1.0); // two shared modules, still 1.0
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
    }

    #[test]
    fn shared_count_weighting() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::SharedCount);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    fn all_weightings_same_sparsity_pattern() {
        let hg = hand_example();
        let pattern: Vec<Vec<u32>> = IgWeighting::ALL
            .iter()
            .map(|&w| {
                let a = intersection_adjacency(&hg, w);
                (0..hg.num_nets())
                    .flat_map(|r| a.row(r).0.to_vec())
                    .collect()
            })
            .collect();
        for p in &pattern[1..] {
            assert_eq!(&pattern[0], p);
        }
    }

    #[test]
    fn neighbors_match_shared_modules() {
        let hg = hand_example();
        let nb = intersection_neighbors(&hg);
        for a in hg.nets() {
            for b_ in hg.nets() {
                if a == b_ {
                    continue;
                }
                let share = !hg.shared_modules(a, b_).is_empty();
                let adjacent = nb[a.index()].binary_search(&b_.0).is_ok();
                assert_eq!(share, adjacent, "nets {a},{b_}");
            }
        }
    }

    #[test]
    fn neighbors_symmetric_and_deduped() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3], vec![2, 3]]);
        let nb = intersection_neighbors(&hg);
        for (i, list) in nb.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
            for &j in list {
                assert!(nb[j as usize].contains(&(i as u32)), "asymmetric {i}-{j}");
            }
        }
    }

    #[test]
    fn intersection_sparser_than_clique_on_wide_nets() {
        // one 10-pin net + a few 2-pin nets: clique explodes, IG does not
        let mut nets = vec![(0..10u32).collect::<Vec<_>>()];
        for i in 0..5 {
            nets.push(vec![i, i + 10]);
        }
        let hg = hypergraph_from_nets(15, &nets);
        let clique = super::super::clique::clique_adjacency(&hg);
        let ig = intersection_adjacency(&hg, IgWeighting::Paper);
        assert!(
            ig.nnz() < clique.nnz(),
            "ig {} vs clique {}",
            ig.nnz(),
            clique.nnz()
        );
    }

    #[test]
    fn threaded_build_bit_identical_for_all_weightings() {
        let hg = hypergraph_from_nets(
            9,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![6],
                vec![6, 7, 8],
                vec![1, 7],
                vec![2, 8, 4],
            ],
        );
        for w in IgWeighting::ALL {
            let serial = intersection_adjacency(&hg, w);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    intersection_adjacency_threaded(&hg, w, threads),
                    serial,
                    "weighting={w:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn duplicate_pin_net_no_self_loop() {
        // regression: a raw net listing module 1 twice must not produce a
        // self-pair in the nets[i]/nets[j] loop. HypergraphBuilder dedupes
        // the pin list, so nets_of stays duplicate-free and the diagonal
        // of A' stays empty.
        let hg = hypergraph_from_nets(3, &[vec![0, 1, 1], vec![1, 2]]);
        assert_eq!(hg.net_size(np_netlist::NetId(0)), 2, "pins deduped");
        for w in IgWeighting::ALL {
            let a = intersection_adjacency(&hg, w);
            for r in 0..hg.num_nets() {
                assert_eq!(a.get(r, r), 0.0, "self-loop under {w:?}");
                assert!(a.row(r).1.iter().all(|v| v.is_finite()));
            }
        }
        // the shared module is counted once: d(1) = 2, |n0| = |n1| = 2
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        assert!((a.get(0, 1) - 1.0).abs() < 1e-12, "1/(2−1)·(1/2+1/2)");
    }

    #[test]
    fn single_pin_net_weights_finite() {
        // a single-pin net is an isolated vertex of G' with finite (zero)
        // degree, not a NaN/∞ source
        let hg = hypergraph_from_nets(3, &[vec![0], vec![0, 1], vec![1, 2]]);
        for w in IgWeighting::ALL {
            let q = intersection_laplacian(&hg, w);
            assert!(q.degrees().iter().all(|d| d.is_finite()), "{w:?}");
        }
    }

    #[test]
    fn laplacian_degrees_are_row_sums() {
        let hg = hand_example();
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let q = intersection_laplacian(&hg, IgWeighting::Paper);
        for i in 0..hg.num_nets() {
            let row_sum: f64 = a.row(i).1.iter().sum();
            assert!((q.degrees()[i] - row_sum).abs() < 1e-12);
        }
    }
}
