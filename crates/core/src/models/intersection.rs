//! The intersection graph (dual) representation of the netlist.
//!
//! Given the netlist hypergraph `H = (V', E')` with `m` nets, the
//! intersection graph `G'` has one vertex per net and an edge `{s_a, s_b}`
//! whenever the two nets share at least one module (paper §2.2, Figure 1).
//! The paper's edge weighting, over the `q` shared modules `v_1..v_q`:
//!
//! ```text
//!     A'_ab = Σ_{k=1..q}  1/(d_k − 1) · (1/|s_a| + 1/|s_b|)
//! ```
//!
//! where `d_k` is the hypergraph degree of shared module `v_k`. Overlaps
//! between large nets, and overlaps through promiscuous (high-degree)
//! modules, are discounted.
//!
//! The paper reports that several weighting variants give "extremely
//! similar, high-quality" results; [`IgWeighting`] exposes the variants so
//! the claim can be tested (ablation experiment E10 in `DESIGN.md`).

use np_netlist::Hypergraph;
use np_sparse::{CsrMatrix, Laplacian, TripletBuilder};

/// Edge-weighting scheme for the intersection graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IgWeighting {
    /// The paper's weighting:
    /// `Σ_k 1/(d_k−1) · (1/|s_a| + 1/|s_b|)` over shared modules.
    #[default]
    Paper,
    /// Unit weight for every intersecting pair of nets.
    Uniform,
    /// Weight = number of shared modules.
    SharedCount,
    /// Weight = `Σ_k (1/|s_a| + 1/|s_b|)`: size-discounted but without the
    /// module-degree factor.
    SizeScaled,
}

impl IgWeighting {
    /// All implemented variants, for ablation sweeps.
    pub const ALL: [IgWeighting; 4] = [
        IgWeighting::Paper,
        IgWeighting::Uniform,
        IgWeighting::SharedCount,
        IgWeighting::SizeScaled,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IgWeighting::Paper => "paper",
            IgWeighting::Uniform => "uniform",
            IgWeighting::SharedCount => "shared-count",
            IgWeighting::SizeScaled => "size-scaled",
        }
    }
}

/// Builds the weighted adjacency matrix `A'` of the intersection graph.
///
/// The matrix is `m × m` for `m = hg.num_nets()`. Construction enumerates,
/// for every module of degree `d ≥ 2`, the `C(d,2)` pairs of nets meeting
/// at that module — `O(Σ_v d_v²)` total, which is small because module
/// degrees are bounded by technology fanout limits.
///
/// Note that for [`IgWeighting::Uniform`] the entry for a pair sharing
/// several modules is still `1.0` (the weight is per *pair*, not per
/// shared module).
///
/// # Example
///
/// ```
/// use np_core::models::{intersection_adjacency, IgWeighting};
/// use np_netlist::hypergraph_from_nets;
///
/// // nets n0={0,1}, n1={1,2}: share module 1, which has degree 2
/// let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
/// let a = intersection_adjacency(&hg, IgWeighting::Paper);
/// // A'_01 = 1/(2-1) · (1/2 + 1/2) = 1
/// assert!((a.get(0, 1) - 1.0).abs() < 1e-12);
/// ```
pub fn intersection_adjacency(hg: &Hypergraph, weighting: IgWeighting) -> CsrMatrix {
    let mut b = TripletBuilder::new(hg.num_nets());
    match weighting {
        IgWeighting::Paper | IgWeighting::SizeScaled => {
            for module in hg.modules() {
                let nets = hg.nets_of(module);
                let d = nets.len();
                if d < 2 {
                    continue;
                }
                let degree_factor = match weighting {
                    IgWeighting::Paper => 1.0 / (d as f64 - 1.0),
                    _ => 1.0,
                };
                for i in 0..d {
                    let size_i = hg.net_size(nets[i]) as f64;
                    for j in i + 1..d {
                        let size_j = hg.net_size(nets[j]) as f64;
                        let w = degree_factor * (1.0 / size_i + 1.0 / size_j);
                        b.push_sym(nets[i].index(), nets[j].index(), w);
                    }
                }
            }
        }
        IgWeighting::Uniform | IgWeighting::SharedCount => {
            // accumulate shared-module counts, then post-process
            for module in hg.modules() {
                let nets = hg.nets_of(module);
                for i in 0..nets.len() {
                    for j in i + 1..nets.len() {
                        b.push_sym(nets[i].index(), nets[j].index(), 1.0);
                    }
                }
            }
            if weighting == IgWeighting::Uniform {
                // collapse accumulated counts back to 1.0 per pair
                let counts = b.into_csr();
                let mut b2 = TripletBuilder::new(hg.num_nets());
                for r in 0..hg.num_nets() {
                    let (cols, _) = counts.row(r);
                    for &c in cols {
                        if (c as usize) > r {
                            b2.push_sym(r, c as usize, 1.0);
                        }
                    }
                }
                return b2.into_csr();
            }
        }
    }
    b.into_csr()
}

/// The Laplacian `Q' = D' − A'` of the intersection graph; its Fiedler
/// vector gives the net ordering for IG-Vote and IG-Match.
pub fn intersection_laplacian(hg: &Hypergraph, weighting: IgWeighting) -> Laplacian {
    Laplacian::from_adjacency(intersection_adjacency(hg, weighting))
}

/// Unweighted adjacency lists of the intersection graph: for each net, the
/// sorted list of other nets sharing at least one module with it.
///
/// This is the structure the IG-Match bipartite machinery works on — the
/// conflict edges of a split are exactly the intersection-graph edges that
/// cross it, independent of any weighting (paper §3).
pub fn intersection_neighbors(hg: &Hypergraph) -> Vec<Vec<u32>> {
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); hg.num_nets()];
    for module in hg.modules() {
        let nets = hg.nets_of(module);
        for i in 0..nets.len() {
            for j in i + 1..nets.len() {
                neighbors[nets[i].index()].push(nets[j].0);
                neighbors[nets[j].index()].push(nets[i].0);
            }
        }
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }
    neighbors
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    /// The 6-net example of paper Figure 1 cannot be reproduced exactly
    /// (the figure is an image), but its defining property can: the
    /// weighting formula, checked entry by entry on a hand example.
    fn hand_example() -> Hypergraph {
        // modules 0..5
        // n0 = {0,1,2}, n1 = {2,3}, n2 = {3,4,5}, n3 = {0,5}
        hypergraph_from_nets(6, &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]])
    }

    #[test]
    fn paper_weighting_formula() {
        let hg = hand_example();
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        // n0 ∩ n1 = {2}; d(2) = 2; |n0| = 3, |n1| = 2
        let expect01 = 1.0 / (2.0 - 1.0) * (1.0 / 3.0 + 1.0 / 2.0);
        assert!((a.get(0, 1) - expect01).abs() < 1e-12);
        // n1 ∩ n2 = {3}; d(3) = 2; |n1| = 2, |n2| = 3
        let expect12 = 1.0 * (1.0 / 2.0 + 1.0 / 3.0);
        assert!((a.get(1, 2) - expect12).abs() < 1e-12);
        // n0 ∩ n2 = ∅
        assert_eq!(a.get(0, 2), 0.0);
        // n0 ∩ n3 = {0}; d(0) = 2
        let expect03 = 1.0 * (1.0 / 3.0 + 1.0 / 2.0);
        assert!((a.get(0, 3) - expect03).abs() < 1e-12);
    }

    #[test]
    fn multiple_shared_modules_sum() {
        // n0 = {0,1,2}, n1 = {0,1,3}: share modules 0 and 1, both degree 2
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let per_module = 1.0 * (1.0 / 3.0 + 1.0 / 3.0);
        assert!((a.get(0, 1) - 2.0 * per_module).abs() < 1e-12);
    }

    #[test]
    fn high_degree_module_discounted() {
        // module 0 belongs to 3 nets: pairs through it get factor 1/2
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let expect = (1.0 / 2.0) * (1.0 / 2.0 + 1.0 / 2.0);
        assert!((a.get(0, 1) - expect).abs() < 1e-12);
        assert!((a.get(1, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_weighting_is_zero_one() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3], vec![3, 2]]);
        let a = intersection_adjacency(&hg, IgWeighting::Uniform);
        assert_eq!(a.get(0, 1), 1.0); // two shared modules, still 1.0
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
    }

    #[test]
    fn shared_count_weighting() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3]]);
        let a = intersection_adjacency(&hg, IgWeighting::SharedCount);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    fn all_weightings_same_sparsity_pattern() {
        let hg = hand_example();
        let pattern: Vec<Vec<u32>> = IgWeighting::ALL
            .iter()
            .map(|&w| {
                let a = intersection_adjacency(&hg, w);
                (0..hg.num_nets())
                    .flat_map(|r| a.row(r).0.to_vec())
                    .collect()
            })
            .collect();
        for p in &pattern[1..] {
            assert_eq!(&pattern[0], p);
        }
    }

    #[test]
    fn neighbors_match_shared_modules() {
        let hg = hand_example();
        let nb = intersection_neighbors(&hg);
        for a in hg.nets() {
            for b_ in hg.nets() {
                if a == b_ {
                    continue;
                }
                let share = !hg.shared_modules(a, b_).is_empty();
                let adjacent = nb[a.index()].binary_search(&b_.0).is_ok();
                assert_eq!(share, adjacent, "nets {a},{b_}");
            }
        }
    }

    #[test]
    fn neighbors_symmetric_and_deduped() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![0, 1, 3], vec![2, 3]]);
        let nb = intersection_neighbors(&hg);
        for (i, list) in nb.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
            for &j in list {
                assert!(nb[j as usize].contains(&(i as u32)), "asymmetric {i}-{j}");
            }
        }
    }

    #[test]
    fn intersection_sparser_than_clique_on_wide_nets() {
        // one 10-pin net + a few 2-pin nets: clique explodes, IG does not
        let mut nets = vec![(0..10u32).collect::<Vec<_>>()];
        for i in 0..5 {
            nets.push(vec![i, i + 10]);
        }
        let hg = hypergraph_from_nets(15, &nets);
        let clique = super::super::clique::clique_adjacency(&hg);
        let ig = intersection_adjacency(&hg, IgWeighting::Paper);
        assert!(
            ig.nnz() < clique.nnz(),
            "ig {} vs clique {}",
            ig.nnz(),
            clique.nnz()
        );
    }

    #[test]
    fn laplacian_degrees_are_row_sums() {
        let hg = hand_example();
        let a = intersection_adjacency(&hg, IgWeighting::Paper);
        let q = intersection_laplacian(&hg, IgWeighting::Paper);
        for i in 0..hg.num_nets() {
            let row_sum: f64 = a.row(i).1.iter().sum();
            assert!((q.degrees()[i] - row_sum).abs() < 1e-12);
        }
    }
}
