//! The IG-Match algorithm (paper §3, Figures 5–7).
//!
//! IG-Match turns a spectral *net* ordering into a *module* partition in
//! two phases per split of the ordering:
//!
//! * **Phase I** — maintain a maximum matching in the bipartite conflict
//!   graph `B(L, R, E_B)` incrementally as the split slides
//!   ([`SplitMatcher`]), and classify nets into winners (`Even` sets),
//!   forced losers (`Odd` sets) and the residual `B'` via alternating-path
//!   BFS. By König duality the winner sets extend to a maximum independent
//!   set, so the number of cut nets in the completion never exceeds the
//!   matching size (Theorems 2–5) — a bound this implementation
//!   debug-asserts on every split;
//! * **Phase II** — pin the winners' modules to their sides and place the
//!   remaining "free" modules first all-left then all-right, keeping the
//!   better ratio cut (Figure 6).
//!
//! The best partition over all `m − 1` splits is returned. A single
//! deterministic execution suffices — no random restarts (paper §5).
//!
//! Both phases are maintained *incrementally* as the split slides
//! (`DESIGN.md` §11): [`SplitMatcher::move_to_r`] reports the affected
//! vertices as a [`MoveDelta`], [`NetClassifier`] re-runs the alternating
//! BFS only inside the touched `B`-components, and [`SweepState`] folds
//! the resulting class changes into maintained module tags and
//! both-orientation cut statistics, so each split costs work proportional
//! to what changed rather than the size of the instance. The winning
//! partition is materialized once, after the sweep. In debug builds every
//! split is cross-checked against the from-scratch
//! [`classify`](SplitMatcher::classify) + [`CompletionOracle`] pipeline.
//!
//! The optional [`IgMatchOptions::refine_free_modules`] implements the
//! extension sketched at the end of §3 ("recursive calls to IG-Match in
//! order to optimally assign modules of B′, B″, etc."): instead of
//! treating the free modules as one indivisible block, their connected
//! components are assigned greedily side-by-side, which can only improve
//! the ratio cut.

mod bipartite;
mod refine;
mod sweep;

pub use bipartite::{
    MoveDelta, NetClass, NetClassChange, NetClassifier, SplitClassification, SplitMatcher,
};
pub use sweep::{CompletionOracle, ModuleTag, OrientedEval, SplitCandidate, SweepState};

use crate::engine::RunContext;
use crate::models::IgWeighting;
use crate::ordering::spectral_net_ordering_ctx;
use crate::{PartitionError, PartitionResult};
use np_eigen::LanczosOptions;
use np_netlist::{Hypergraph, NetId};

/// Options for [`ig_match`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IgMatchOptions {
    /// Intersection-graph edge weighting used for the spectral ordering.
    pub weighting: IgWeighting,
    /// Eigensolver options.
    pub lanczos: LanczosOptions,
    /// Enables the §3 extension: component-wise assignment of the free
    /// modules of the winning split (never worsens the result).
    pub refine_free_modules: bool,
}

/// Outcome of an IG-Match run: the partition plus the Phase I quantities
/// at the winning split.
#[derive(Clone, Debug, PartialEq)]
pub struct IgMatchOutcome {
    /// The best module partition found over all splits.
    pub result: PartitionResult,
    /// Size of the maximum matching in `B` at the winning split — the
    /// optimal completion bound of Theorem 3.
    pub matching_size: usize,
    /// Loser count charged by the completion at the winning split
    /// (`Odd` sets plus one side of `B'`); `≤ matching_size` by Theorem 5.
    pub loser_count: usize,
}

/// Runs the full IG-Match algorithm: spectral net ordering on the
/// intersection graph, then matching-based completion over every split.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] for instances with fewer than 2 modules
///   or nets;
/// * [`PartitionError::Eigen`] if the eigensolve fails;
/// * [`PartitionError::Degenerate`] if no split yields two non-empty
///   sides.
///
/// # Example
///
/// ```
/// use np_core::{ig_match, IgMatchOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let out = ig_match(&hg, &IgMatchOptions::default())?;
/// assert_eq!(out.result.stats.cut_nets, 1);
/// assert!(out.result.stats.cut_nets <= out.matching_size);
/// # Ok::<(), np_core::PartitionError>(())
/// ```
pub fn ig_match(hg: &Hypergraph, opts: &IgMatchOptions) -> Result<IgMatchOutcome, PartitionError> {
    ig_match_ctx(hg, opts, &RunContext::unlimited())
}

/// [`ig_match`] against an execution context — the single implementation
/// behind every entry point. The eigensolve charges one
/// matvec-equivalent per operator application against the context's meter
/// and the completion sweep checks the wall clock at every split, so a
/// tripped meter surfaces within one iteration's work.
///
/// # Errors
///
/// The [`ig_match`] errors plus [`PartitionError::Budget`] when the
/// context's meter reports a limit hit.
pub fn ig_match_ctx(
    hg: &Hypergraph,
    opts: &IgMatchOptions,
    ctx: &RunContext<'_>,
) -> Result<IgMatchOutcome, PartitionError> {
    if hg.num_modules() < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
        });
    }
    let order = spectral_net_ordering_ctx(hg, opts.weighting, &opts.lanczos, ctx)?;
    ig_match_with_ordering_ctx(hg, &order, opts.refine_free_modules, ctx)
}

/// Runs the IG-Match completion over every split of an explicit net
/// ordering. Exposed so the matching machinery can be driven by
/// non-spectral orderings (tests, ablations).
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] if `order` is not a permutation of
///   the nets of `hg`;
/// * [`PartitionError::Degenerate`] if no split yields two non-empty
///   sides.
pub fn ig_match_with_ordering(
    hg: &Hypergraph,
    order: &[NetId],
    refine_free_modules: bool,
) -> Result<IgMatchOutcome, PartitionError> {
    ig_match_with_ordering_ctx(hg, order, refine_free_modules, &RunContext::unlimited())
}

/// [`ig_match_with_ordering`] against an execution context — the single
/// implementation behind every entry point. The context meter's wall
/// clock is checked once per split of the sweep.
///
/// # Errors
///
/// The [`ig_match_with_ordering`] errors plus [`PartitionError::Budget`]
/// when the context's meter reports a limit hit.
pub fn ig_match_with_ordering_ctx(
    hg: &Hypergraph,
    order: &[NetId],
    refine_free_modules: bool,
    ctx: &RunContext<'_>,
) -> Result<IgMatchOutcome, PartitionError> {
    let meter = ctx.meter();
    validate_net_ordering(hg, order)?;
    let m = hg.num_nets();
    if m < 2 {
        return Err(PartitionError::TooSmall {
            modules: hg.num_modules(),
            nets: m,
        });
    }

    let neighbors = ctx.intersection_neighbors(hg);
    let mut state = SweepState::new(hg, &neighbors);

    let mut best: Option<Best> = None;

    // after moving k+1 nets, the split is (R = order[..=k] | L = order[k+1..]);
    // the last move empties L and is skipped (degenerate split)
    for (k, &net) in order[..m - 1].iter().enumerate() {
        meter.check()?;
        let SplitCandidate {
            stats,
            put_free_left,
            losers,
        } = state.advance(hg, net.0).candidate();
        debug_assert!(
            losers <= state.matching_size(),
            "Theorem 5 violated at split {k}: {losers} losers > MM {}",
            state.matching_size()
        );
        debug_assert!(
            stats.cut_nets <= losers,
            "completion cut {} exceeds loser count {losers} at split {k}",
            stats.cut_nets
        );
        let ratio = stats.ratio();
        if ratio.is_finite() && best.as_ref().is_none_or(|b| ratio < b.ratio) {
            best = Some(Best {
                ratio,
                split_rank: k,
                put_free_left,
                matching_size: state.matching_size(),
                loser_count: losers,
            });
        }
    }

    let best = best.ok_or(PartitionError::Degenerate)?;
    // Materialize the winner once: replay the winning prefix instead of
    // cloning a partition (and free mask) on every improvement mid-sweep.
    let mut replay = SweepState::new(hg, &neighbors);
    for &net in &order[..=best.split_rank] {
        replay.advance(hg, net.0);
    }
    let mut partition = replay.materialize(hg, best.put_free_left);
    if refine_free_modules {
        refine::refine_free_components(hg, &mut partition, &replay.free_mask(hg));
    }
    let result = PartitionResult::evaluate(hg, partition, "IG-Match", Some(best.split_rank));
    debug_assert!(result.stats.cut_nets <= best.loser_count || refine_free_modules);
    Ok(IgMatchOutcome {
        result,
        matching_size: best.matching_size,
        loser_count: best.loser_count,
    })
}

/// Rejects orderings that are not permutations of the nets of `hg`
/// (wrong length, out-of-range ids or duplicates) — feeding such an
/// ordering to the incremental matcher would corrupt its state.
fn validate_net_ordering(hg: &Hypergraph, order: &[NetId]) -> Result<(), PartitionError> {
    if order.len() != hg.num_nets() {
        return Err(PartitionError::InvalidInput {
            reason: "net ordering length does not match the net count",
        });
    }
    let mut seen = vec![false; hg.num_nets()];
    for &net in order {
        match seen.get_mut(net.index()) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => {
                return Err(PartitionError::InvalidInput {
                    reason: "net ordering contains a duplicate net",
                })
            }
            None => {
                return Err(PartitionError::InvalidInput {
                    reason: "net ordering references a net outside the hypergraph",
                })
            }
        }
    }
    Ok(())
}

/// The winning split of a sweep — just the numbers needed to replay and
/// score it; the partition itself is materialized once, after the loop.
struct Best {
    ratio: f64,
    split_rank: usize,
    put_free_left: bool,
    matching_size: usize,
    loser_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;
    use np_sparse::BudgetMeter;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn finds_bridge_cut() {
        let out = ig_match(&two_triangles(), &IgMatchOptions::default()).unwrap();
        assert_eq!(out.result.stats.cut_nets, 1);
        assert_eq!(out.result.stats.areas(), "3:3");
        assert!(out.result.stats.cut_nets <= out.matching_size);
        assert!(out.loser_count <= out.matching_size);
    }

    #[test]
    fn explicit_ordering_perfect_split() {
        let hg = two_triangles();
        let order: Vec<NetId> = [0u32, 1, 2, 6, 3, 4, 5].iter().map(|&i| NetId(i)).collect();
        let out = ig_match_with_ordering(&hg, &order, false).unwrap();
        assert_eq!(out.result.stats.cut_nets, 1);
    }

    #[test]
    fn adversarial_ordering_still_valid() {
        let hg = two_triangles();
        // worst-case interleaving
        let order: Vec<NetId> = [0u32, 3, 1, 4, 2, 5, 6].iter().map(|&i| NetId(i)).collect();
        let out = ig_match_with_ordering(&hg, &order, false).unwrap();
        let s = &out.result.stats;
        assert!(s.left > 0 && s.right > 0);
        assert_eq!(s.left + s.right, 6);
        assert_eq!(*s, out.result.partition.cut_stats(&hg));
        assert!(s.cut_nets <= out.loser_count);
    }

    #[test]
    fn stats_consistent_with_partition() {
        let out = ig_match(&two_triangles(), &IgMatchOptions::default()).unwrap();
        assert_eq!(
            out.result.stats,
            out.result.partition.cut_stats(&two_triangles())
        );
    }

    #[test]
    fn figure4_style_cut_below_matching_bound() {
        // A situation where the completed partition cuts fewer nets than
        // the matching size (paper Figure 4): losers may end up uncut when
        // Phase II pulls all their modules to one side.
        // nets: a={0,1}, b={1,2}, c={2,3}, d={3,4}, e={4,5}
        let hg = hypergraph_from_nets(
            6,
            &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5]],
        );
        // sweep all orderings of a path; bound must hold everywhere
        let order: Vec<NetId> = (0..5u32).map(NetId).collect();
        let out = ig_match_with_ordering(&hg, &order, false).unwrap();
        assert!(out.result.stats.cut_nets <= out.matching_size);
    }

    #[test]
    fn malformed_orderings_rejected_not_panicking() {
        let hg = two_triangles();
        // wrong length
        let short: Vec<NetId> = vec![NetId(0)];
        assert!(matches!(
            ig_match_with_ordering(&hg, &short, false),
            Err(PartitionError::InvalidInput { .. })
        ));
        // duplicate net
        let dup: Vec<NetId> = [0u32, 1, 2, 3, 4, 5, 5].iter().map(|&i| NetId(i)).collect();
        assert!(matches!(
            ig_match_with_ordering(&hg, &dup, false),
            Err(PartitionError::InvalidInput { .. })
        ));
        // out-of-range net id
        let oob: Vec<NetId> = [0u32, 1, 2, 3, 4, 5, 99]
            .iter()
            .map(|&i| NetId(i))
            .collect();
        assert!(matches!(
            ig_match_with_ordering(&hg, &oob, false),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn sweep_respects_wall_clock_budget() {
        use np_sparse::Budget;
        use std::time::Duration;
        let hg = two_triangles();
        let order: Vec<NetId> = (0..7u32).map(NetId).collect();
        let ctx = RunContext::with_budget(&Budget::default().with_wall_clock(Duration::ZERO));
        assert!(matches!(
            ig_match_with_ordering_ctx(&hg, &order, false, &ctx),
            Err(PartitionError::Budget(_))
        ));
    }

    #[test]
    fn ctx_matches_plain() {
        let hg = two_triangles();
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let meter = BudgetMeter::unlimited();
        let via_ctx = ig_match_ctx(
            &hg,
            &IgMatchOptions::default(),
            &RunContext::with_meter(&meter),
        )
        .unwrap();
        assert_eq!(plain.result.partition, via_ctx.result.partition);
        assert!(meter.matvecs_used() > 0);
    }

    #[test]
    fn single_net_rejected() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1, 2]]);
        assert!(matches!(
            ig_match(&hg, &IgMatchOptions::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    fn two_identical_full_nets_degenerate() {
        // both nets contain all modules: every completion has an empty side
        let hg = hypergraph_from_nets(3, &[vec![0, 1, 2], vec![0, 1, 2]]);
        let order: Vec<NetId> = vec![NetId(0), NetId(1)];
        assert!(matches!(
            ig_match_with_ordering(&hg, &order, false),
            Err(PartitionError::Degenerate)
        ));
    }

    #[test]
    fn deterministic() {
        let hg = two_triangles();
        let a = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let b = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        assert_eq!(a.result.partition, b.result.partition);
    }

    #[test]
    fn refinement_never_worsens() {
        let hg = two_triangles();
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let refined = ig_match(
            &hg,
            &IgMatchOptions {
                refine_free_modules: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(refined.result.ratio() <= plain.result.ratio() + 1e-12);
    }

    #[test]
    fn all_weightings_work() {
        let hg = two_triangles();
        for w in IgWeighting::ALL {
            let out = ig_match(
                &hg,
                &IgMatchOptions {
                    weighting: w,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(out.result.stats.cut_nets, 1, "weighting {}", w.name());
        }
    }

    #[test]
    fn unbalanced_natural_cut_found() {
        // satellite of 2 modules attached by one net to a clique of 6
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for i in 2..8u32 {
            for j in i + 1..8 {
                nets.push(vec![i, j]);
            }
        }
        nets.push(vec![0, 1]); // satellite net
        nets.push(vec![1, 2]); // coupling net
        let hg = hypergraph_from_nets(8, &nets);
        let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        assert_eq!(out.result.stats.cut_nets, 1);
        assert_eq!(out.result.stats.areas(), "2:6");
    }
}
