//! The incremental Phase II completion sweep: module tags and
//! both-orientation cut statistics maintained under `O(Δ)` updates as the
//! split slides (paper Figure 6, `DESIGN.md` §11).
//!
//! [`SweepState`] drives one full IG-Match sweep: every
//! [`advance`](SweepState::advance) moves one net across the split,
//! refreshes the [`NetClassifier`] inside the affected `B`-components,
//! and folds the resulting [`NetClassChange`]s into maintained per-module
//! cover counters, per-net pin-tag counts and running cut totals — so the
//! per-split evaluation is `O(1)` plus work proportional to what actually
//! changed, instead of the from-scratch `O(|V|+|E|+pins)` of
//! [`CompletionOracle`]. In debug builds every advance cross-checks the
//! maintained state against the oracle.

use super::bipartite::{MoveDelta, NetClass, NetClassChange, NetClassifier, SplitMatcher};
use super::SplitClassification;
use np_netlist::{Bipartition, CutStats, Hypergraph, NetId, Side};

/// Where Phase II places one module: pinned by a winner net, or free
/// (`V_N`) and assigned by orientation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModuleTag {
    /// Not covered by any winner net — a `V_N` module.
    Free,
    /// Pinned to the left side by a winner-`L` net.
    WinL,
    /// Pinned to the right side by a winner-`R` net.
    WinR,
}

/// Both Phase II orientations of one split, before the better one is
/// chosen: option A assigns the free modules to the left (winner-`L`)
/// side, option B to the right.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrientedEval {
    /// Cut statistics with the free modules on the left.
    pub stats_a: CutStats,
    /// Cut statistics with the free modules on the right.
    pub stats_b: CutStats,
    /// Loser nets charged by option A (`|Odd|` plus `|B' ∩ R|`).
    pub losers_a: usize,
    /// Loser nets charged by option B (`|Odd|` plus `|B' ∩ L|`).
    pub losers_b: usize,
}

impl OrientedEval {
    /// The better orientation, by ratio cut (ties prefer option A, free
    /// modules left — the order the paper's Figure 6 tries them in).
    pub fn candidate(&self) -> SplitCandidate {
        if self.stats_a.ratio() <= self.stats_b.ratio() {
            SplitCandidate {
                stats: self.stats_a,
                put_free_left: true,
                losers: self.losers_a,
            }
        } else {
            SplitCandidate {
                stats: self.stats_b,
                put_free_left: false,
                losers: self.losers_b,
            }
        }
    }
}

/// Result of evaluating both Phase II options at one split: the chosen
/// orientation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitCandidate {
    /// Cut statistics of the better orientation.
    pub stats: CutStats,
    /// `true` if the better option assigns the free modules to the left
    /// (winner-`L`) side.
    pub put_free_left: bool,
    /// Loser nets charged by the better option
    /// (`|Odd(L)| + |Odd(R)| +` the orientation's `B'` side).
    pub losers: usize,
}

/// From-scratch Phase II evaluation (paper Figure 6) — the reference the
/// incremental sweep is checked against.
///
/// Tags every module as `V_L` (in some winner-`L` net), `V_R` (winner-`R`
/// net) or free (`V_N`), then scores both orientations of `V_N` in a
/// single `O(pins)` pass. This is the seed implementation, kept verbatim
/// as the debug-build oracle and for the equivalence suites; production
/// sweeps run [`SweepState`] instead.
pub struct CompletionOracle {
    tag: Vec<ModuleTag>,
    tag_epoch: Vec<u32>,
    epoch: u32,
}

impl CompletionOracle {
    /// An oracle sized for `hg`.
    pub fn new(hg: &Hypergraph) -> Self {
        CompletionOracle {
            tag: vec![ModuleTag::Free; hg.num_modules()],
            tag_epoch: vec![0; hg.num_modules()],
            epoch: 0,
        }
    }

    fn tag_of(&self, m: usize) -> ModuleTag {
        if self.tag_epoch[m] == self.epoch {
            self.tag[m]
        } else {
            ModuleTag::Free
        }
    }

    fn set_tag(&mut self, m: usize, t: ModuleTag) {
        self.tag[m] = t;
        self.tag_epoch[m] = self.epoch;
    }

    /// Tags winner modules and scores both free-module orientations from
    /// scratch.
    pub fn evaluate(&mut self, hg: &Hypergraph, class: &SplitClassification) -> OrientedEval {
        self.epoch += 1;
        let mut count_l = 0usize;
        let mut count_r = 0usize;
        for &net in &class.winners_l {
            for &m in hg.pins(NetId(net)) {
                if self.tag_of(m.index()) == ModuleTag::Free {
                    self.set_tag(m.index(), ModuleTag::WinL);
                    count_l += 1;
                }
                debug_assert_ne!(
                    self.tag_of(m.index()),
                    ModuleTag::WinR,
                    "V_L ∩ V_R nonempty"
                );
            }
        }
        for &net in &class.winners_r {
            for &m in hg.pins(NetId(net)) {
                if self.tag_of(m.index()) == ModuleTag::Free {
                    self.set_tag(m.index(), ModuleTag::WinR);
                    count_r += 1;
                }
                debug_assert_ne!(
                    self.tag_of(m.index()),
                    ModuleTag::WinL,
                    "V_L ∩ V_R nonempty"
                );
            }
        }
        let n = hg.num_modules();
        // option A: free modules join the L side; option B: the R side
        let mut cut_a = 0usize;
        let mut cut_b = 0usize;
        for net in hg.nets() {
            let mut has_l = false;
            let mut has_r = false;
            let mut has_free = false;
            for &m in hg.pins(net) {
                match self.tag_of(m.index()) {
                    ModuleTag::WinL => has_l = true,
                    ModuleTag::WinR => has_r = true,
                    ModuleTag::Free => has_free = true,
                }
            }
            if has_r && (has_l || has_free) {
                cut_a += 1;
            }
            if has_l && (has_r || has_free) {
                cut_b += 1;
            }
        }
        OrientedEval {
            stats_a: CutStats {
                cut_nets: cut_a,
                left: n - count_r,
                right: count_r,
            },
            stats_b: CutStats {
                cut_nets: cut_b,
                left: count_l,
                right: n - count_l,
            },
            losers_a: class.losers.len() + class.bprime_r.len(),
            losers_b: class.losers.len() + class.bprime_l.len(),
        }
    }

    /// Builds the explicit partition for the chosen orientation of the
    /// *current* tags (call right after [`evaluate`](Self::evaluate)).
    pub fn materialize(&self, hg: &Hypergraph, put_free_left: bool) -> Bipartition {
        let sides = (0..hg.num_modules())
            .map(|m| match self.tag_of(m) {
                ModuleTag::WinL => Side::Left,
                ModuleTag::WinR => Side::Right,
                ModuleTag::Free => {
                    if put_free_left {
                        Side::Left
                    } else {
                        Side::Right
                    }
                }
            })
            .collect();
        Bipartition::from_sides(sides)
    }

    /// The `V_N` membership mask of the *current* tags.
    pub fn free_mask(&self, hg: &Hypergraph) -> Vec<bool> {
        (0..hg.num_modules())
            .map(|m| self.tag_of(m) == ModuleTag::Free)
            .collect()
    }
}

/// Incrementally-maintained Phase II state: per-module winner-cover
/// counters, per-net pin-tag counts, and the running cut/loser totals of
/// both orientations, updated only for what a [`NetClassChange`] batch
/// actually touches.
struct IncrementalCompletion {
    /// Number of winner-`L` / winner-`R` nets covering each module; the
    /// module's [`ModuleTag`] is derived from which counter is nonzero
    /// (never both — `V_L ∩ V_R = ∅` by Theorem 2).
    cover_l: Vec<u32>,
    cover_r: Vec<u32>,
    tag: Vec<ModuleTag>,
    /// Modules currently tagged `WinL` / `WinR`.
    count_l: usize,
    count_r: usize,
    /// Pins of each net tagged `WinL` / `WinR` (free = size − both).
    nl: Vec<u32>,
    nr: Vec<u32>,
    /// Running cut totals of orientation A (free→left) and B
    /// (free→right).
    cut_a: usize,
    cut_b: usize,
    /// Class-count totals feeding the loser charges.
    losers: usize,
    bprime_l: usize,
    bprime_r: usize,
}

impl IncrementalCompletion {
    /// State for the initial all-`L` split, where every net is a
    /// winner-`L` (so every connected module is tagged `WinL` and both
    /// orientations cut nothing).
    fn new(hg: &Hypergraph) -> Self {
        let n = hg.num_modules();
        let mut cover_l = vec![0u32; n];
        let mut tag = vec![ModuleTag::Free; n];
        let mut count_l = 0usize;
        for m in hg.modules() {
            let deg = hg.degree(m) as u32;
            cover_l[m.index()] = deg;
            if deg > 0 {
                tag[m.index()] = ModuleTag::WinL;
                count_l += 1;
            }
        }
        let nl = hg.nets().map(|e| hg.net_size(e) as u32).collect();
        IncrementalCompletion {
            cover_l,
            cover_r: vec![0; n],
            tag,
            count_l,
            count_r: 0,
            nl,
            nr: vec![0; hg.num_nets()],
            cut_a: 0,
            cut_b: 0,
            losers: 0,
            bprime_l: 0,
            bprime_r: 0,
        }
    }

    /// Whether net `e` is cut in each orientation, from its maintained
    /// pin-tag counts.
    fn contrib(&self, hg: &Hypergraph, e: usize) -> (bool, bool) {
        let nl = self.nl[e] as usize;
        let nr = self.nr[e] as usize;
        let nf = hg.net_size(NetId(e as u32)) - nl - nr;
        (
            nr > 0 && (nl > 0 || nf > 0), // option A: free modules left
            nl > 0 && (nr > 0 || nf > 0), // option B: free modules right
        )
    }

    /// Folds one batch of classification changes into the maintained
    /// state. Winner demotions are applied before promotions so the
    /// disjointness of `V_L` and `V_R` holds for every intermediate
    /// cover state (a net may hand a module over within one batch).
    fn apply(&mut self, hg: &Hypergraph, changes: &[NetClassChange]) {
        for ch in changes {
            match ch.old {
                NetClass::Loser => self.losers -= 1,
                NetClass::BPrimeL => self.bprime_l -= 1,
                NetClass::BPrimeR => self.bprime_r -= 1,
                NetClass::WinnerL | NetClass::WinnerR => {}
            }
            match ch.new {
                NetClass::Loser => self.losers += 1,
                NetClass::BPrimeL => self.bprime_l += 1,
                NetClass::BPrimeR => self.bprime_r += 1,
                NetClass::WinnerL | NetClass::WinnerR => {}
            }
        }
        for ch in changes {
            match ch.old {
                NetClass::WinnerL => self.shed_cover(hg, ch.net, Side::Left),
                NetClass::WinnerR => self.shed_cover(hg, ch.net, Side::Right),
                _ => {}
            }
        }
        for ch in changes {
            match ch.new {
                NetClass::WinnerL => self.gain_cover(hg, ch.net, Side::Left),
                NetClass::WinnerR => self.gain_cover(hg, ch.net, Side::Right),
                _ => {}
            }
        }
    }

    fn shed_cover(&mut self, hg: &Hypergraph, net: u32, side: Side) {
        for &pin in hg.pins(NetId(net)) {
            let m = pin.index();
            let c = match side {
                Side::Left => &mut self.cover_l[m],
                Side::Right => &mut self.cover_r[m],
            };
            *c -= 1;
            if *c == 0 {
                self.retag(hg, m);
            }
        }
    }

    fn gain_cover(&mut self, hg: &Hypergraph, net: u32, side: Side) {
        for &pin in hg.pins(NetId(net)) {
            let m = pin.index();
            let c = match side {
                Side::Left => &mut self.cover_l[m],
                Side::Right => &mut self.cover_r[m],
            };
            *c += 1;
            if *c == 1 {
                self.retag(hg, m);
            }
        }
    }

    /// Re-derives module `m`'s tag from its cover counters and, if it
    /// changed, pushes the change through every incident net's pin-tag
    /// counts and the cut totals — `O(deg(m))`.
    fn retag(&mut self, hg: &Hypergraph, m: usize) {
        debug_assert!(
            !(self.cover_l[m] > 0 && self.cover_r[m] > 0),
            "V_L ∩ V_R nonempty at module {m}"
        );
        let new = if self.cover_l[m] > 0 {
            ModuleTag::WinL
        } else if self.cover_r[m] > 0 {
            ModuleTag::WinR
        } else {
            ModuleTag::Free
        };
        let old = self.tag[m];
        if old == new {
            return;
        }
        self.tag[m] = new;
        match old {
            ModuleTag::WinL => self.count_l -= 1,
            ModuleTag::WinR => self.count_r -= 1,
            ModuleTag::Free => {}
        }
        match new {
            ModuleTag::WinL => self.count_l += 1,
            ModuleTag::WinR => self.count_r += 1,
            ModuleTag::Free => {}
        }
        for &net in hg.nets_of(np_netlist::ModuleId(m as u32)) {
            let e = net.index();
            let (was_a, was_b) = self.contrib(hg, e);
            match old {
                ModuleTag::WinL => self.nl[e] -= 1,
                ModuleTag::WinR => self.nr[e] -= 1,
                ModuleTag::Free => {}
            }
            match new {
                ModuleTag::WinL => self.nl[e] += 1,
                ModuleTag::WinR => self.nr[e] += 1,
                ModuleTag::Free => {}
            }
            let (is_a, is_b) = self.contrib(hg, e);
            self.cut_a = self.cut_a + is_a as usize - was_a as usize;
            self.cut_b = self.cut_b + is_b as usize - was_b as usize;
        }
    }

    /// Both orientations of the current split, assembled from the
    /// maintained totals in `O(1)`.
    fn eval(&self, hg: &Hypergraph) -> OrientedEval {
        let n = hg.num_modules();
        OrientedEval {
            stats_a: CutStats {
                cut_nets: self.cut_a,
                left: n - self.count_r,
                right: self.count_r,
            },
            stats_b: CutStats {
                cut_nets: self.cut_b,
                left: self.count_l,
                right: n - self.count_l,
            },
            losers_a: self.losers + self.bprime_r,
            losers_b: self.losers + self.bprime_l,
        }
    }
}

/// One incremental IG-Match sweep over a sliding split: the maintained
/// matching, net classification and Phase II completion state, advanced
/// one net move at a time.
///
/// # Example
///
/// ```
/// use np_core::igmatch::SweepState;
/// use np_core::models::intersection_neighbors;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let neighbors = intersection_neighbors(&hg);
/// let mut sweep = SweepState::new(&hg, &neighbors);
/// let eval = sweep.advance(&hg, 0); // split {0} | {1, 2}
/// assert_eq!(eval.candidate().stats.cut_nets, 1);
/// assert_eq!(sweep.matching_size(), 1);
/// ```
pub struct SweepState {
    matcher: SplitMatcher,
    classifier: NetClassifier,
    completion: IncrementalCompletion,
    delta: MoveDelta,
    changes: Vec<NetClassChange>,
    #[cfg(debug_assertions)]
    oracle: CompletionOracle,
}

impl SweepState {
    /// A sweep at the initial all-`L` split.
    ///
    /// `neighbors` must be the intersection-graph adjacency of `hg` (see
    /// [`intersection_neighbors`](crate::models::intersection_neighbors)).
    /// The adjacency is flattened into the matcher's owned CSR layout, so
    /// the sweep does not borrow it.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors.len() != hg.num_nets()`.
    pub fn new(hg: &Hypergraph, neighbors: &[Vec<u32>]) -> Self {
        assert_eq!(
            neighbors.len(),
            hg.num_nets(),
            "adjacency does not match the hypergraph"
        );
        SweepState {
            matcher: SplitMatcher::new(neighbors),
            classifier: NetClassifier::new(hg.num_nets()),
            completion: IncrementalCompletion::new(hg),
            delta: MoveDelta::default(),
            changes: Vec::new(),
            #[cfg(debug_assertions)]
            oracle: CompletionOracle::new(hg),
        }
    }

    /// Moves `net` across the split, refreshes the classification inside
    /// the affected components, folds the changes into the completion
    /// state, and returns both orientations of the new split.
    ///
    /// In debug builds the maintained evaluation is asserted equal to the
    /// from-scratch [`CompletionOracle`] on every advance.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or already on the `R` side.
    pub fn advance(&mut self, hg: &Hypergraph, net: u32) -> OrientedEval {
        self.matcher.move_to_r_into(net, &mut self.delta);
        self.classifier
            .refresh(&self.matcher, &self.delta, &mut self.changes);
        self.completion.apply(hg, &self.changes);
        let eval = self.completion.eval(hg);
        #[cfg(debug_assertions)]
        {
            let class = self.matcher.classify();
            debug_assert_eq!(
                class.net_classes(hg.num_nets()),
                self.classifier.classes(),
                "incremental classification diverged from the oracle"
            );
            let reference = self.oracle.evaluate(hg, &class);
            debug_assert_eq!(
                reference, eval,
                "incremental completion diverged from the oracle"
            );
        }
        eval
    }

    /// Current size of the maintained maximum matching — the Theorem-3
    /// completion bound of the current split.
    pub fn matching_size(&self) -> usize {
        self.matcher.matching_size()
    }

    /// Both orientations of the current split (`O(1)`).
    pub fn eval(&self, hg: &Hypergraph) -> OrientedEval {
        self.completion.eval(hg)
    }

    /// Current class of one net.
    pub fn net_class(&self, net: u32) -> NetClass {
        self.classifier.class_of(net)
    }

    /// The Phase II tag of one module at the current split.
    pub fn module_tag(&self, m: usize) -> ModuleTag {
        self.completion.tag[m]
    }

    /// Builds the explicit partition of the current split for the chosen
    /// orientation.
    pub fn materialize(&self, hg: &Hypergraph, put_free_left: bool) -> Bipartition {
        let sides = (0..hg.num_modules())
            .map(|m| match self.completion.tag[m] {
                ModuleTag::WinL => Side::Left,
                ModuleTag::WinR => Side::Right,
                ModuleTag::Free => {
                    if put_free_left {
                        Side::Left
                    } else {
                        Side::Right
                    }
                }
            })
            .collect();
        Bipartition::from_sides(sides)
    }

    /// The `V_N` membership mask of the current split.
    pub fn free_mask(&self, hg: &Hypergraph) -> Vec<bool> {
        (0..hg.num_modules())
            .map(|m| self.completion.tag[m] == ModuleTag::Free)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::intersection_neighbors;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    /// Drives the from-scratch reference sweep one split at a time.
    fn oracle_eval(hg: &Hypergraph, neighbors: &[Vec<u32>], prefix: &[u32]) -> OrientedEval {
        let mut matcher = SplitMatcher::new(neighbors);
        for &v in prefix {
            matcher.move_to_r(v);
        }
        let class = matcher.classify();
        CompletionOracle::new(hg).evaluate(hg, &class)
    }

    #[test]
    fn incremental_matches_oracle_at_every_split() {
        let hg = two_triangles();
        let neighbors = intersection_neighbors(&hg);
        for order in [
            vec![0u32, 1, 2, 6, 3, 4, 5],
            vec![0u32, 3, 1, 4, 2, 5, 6],
            vec![6u32, 5, 4, 3, 2, 1, 0],
        ] {
            let mut sweep = SweepState::new(&hg, &neighbors);
            for k in 0..order.len() - 1 {
                let eval = sweep.advance(&hg, order[k]);
                assert_eq!(
                    eval,
                    oracle_eval(&hg, &neighbors, &order[..=k]),
                    "order {order:?} split {k}"
                );
            }
        }
    }

    #[test]
    fn initial_state_matches_all_left_oracle() {
        let hg = two_triangles();
        let neighbors = intersection_neighbors(&hg);
        let sweep = SweepState::new(&hg, &neighbors);
        assert_eq!(sweep.eval(&hg), oracle_eval(&hg, &neighbors, &[]));
        assert_eq!(sweep.matching_size(), 0);
    }

    #[test]
    fn materialize_matches_oracle_partition() {
        let hg = two_triangles();
        let neighbors = intersection_neighbors(&hg);
        let order = [0u32, 1, 2, 6, 3, 4];
        let mut sweep = SweepState::new(&hg, &neighbors);
        let mut matcher = SplitMatcher::new(&neighbors);
        let mut oracle = CompletionOracle::new(&hg);
        for &v in &order {
            let eval = sweep.advance(&hg, v);
            matcher.move_to_r(v);
            let reference = oracle.evaluate(&hg, &matcher.classify());
            assert_eq!(eval, reference);
            for put_free_left in [true, false] {
                assert_eq!(
                    sweep.materialize(&hg, put_free_left),
                    oracle.materialize(&hg, put_free_left)
                );
            }
            assert_eq!(sweep.free_mask(&hg), oracle.free_mask(&hg));
        }
    }

    #[test]
    fn isolated_net_is_an_o1_refresh() {
        // net 2 shares no module with anything else
        let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![1, 2], vec![4, 5]]);
        let neighbors = intersection_neighbors(&hg);
        assert!(neighbors[2].is_empty());
        let mut sweep = SweepState::new(&hg, &neighbors);
        let eval = sweep.advance(&hg, 2);
        assert_eq!(eval, oracle_eval(&hg, &neighbors, &[2]));
        assert_eq!(sweep.net_class(2), NetClass::WinnerR);
        assert_eq!(sweep.matching_size(), 0);
    }

    #[test]
    fn module_tags_track_winners() {
        let hg = two_triangles();
        let neighbors = intersection_neighbors(&hg);
        let mut sweep = SweepState::new(&hg, &neighbors);
        for &v in &[0u32, 1, 2, 6] {
            sweep.advance(&hg, v);
        }
        // left triangle nets are all on R now; its modules pin right
        assert_eq!(sweep.module_tag(0), ModuleTag::WinR);
        assert_eq!(sweep.module_tag(4), ModuleTag::WinL);
    }
}
