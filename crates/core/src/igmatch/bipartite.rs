//! Incremental maximum matching in the bipartite conflict graph of a
//! sliding net-ordering split (paper §3, Figures 3 and 5).
//!
//! As the split point slides along the sorted eigenvector, nets move one
//! at a time from `L` to `R`. The bipartite graph `B(L, R, E_B)` — whose
//! edges are the intersection-graph edges crossing the split — changes
//! only locally per move, so a maximum matching can be *maintained* rather
//! than recomputed: unmatch the moving net, try one augmenting path from
//! its exposed ex-partner, then one from the moved net itself. Each repair
//! is a single `O(|V| + |E|)` alternating BFS, giving the paper's
//! `O(|V|·(|V|+|E|))` bound over all splits (Theorem 6).
//!
//! The winner/loser classification is maintained incrementally as well:
//! every move reports a [`MoveDelta`], and [`NetClassifier::refresh`]
//! re-runs the alternating BFS only inside the `B`-components touched by
//! that delta (see `DESIGN.md` §11 for the soundness argument). The
//! from-scratch [`SplitMatcher::classify_into`] is kept unchanged as the
//! oracle the incremental path is cross-checked against in debug builds.

use np_netlist::Side;

const NONE: u32 = u32::MAX;

/// One-bit-per-net side mask of the sliding split (bit set = `R` side).
///
/// The alternating BFS tests a vertex's side on every edge it scans;
/// packing sides 64-per-word keeps the whole mask in a few cache lines
/// (band-L's 8000 nets fit in 1 KiB) where a byte-per-net `Vec<Side>`
/// would stream 8× the data through L1.
#[derive(Clone, Debug)]
struct SideBits {
    words: Vec<u64>,
}

impl SideBits {
    fn all_left(n: usize) -> Self {
        SideBits {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn is_right(&self, v: u32) -> bool {
        (self.words[(v >> 6) as usize] >> (v & 63)) & 1 != 0
    }

    #[inline]
    fn set_right(&mut self, v: u32) {
        self.words[(v >> 6) as usize] |= 1u64 << (v & 63);
    }

    #[inline]
    fn side_of(&self, v: u32) -> Side {
        if self.is_right(v) {
            Side::Right
        } else {
            Side::Left
        }
    }
}

/// Epoch-stamped BFS scratch, structure-of-arrays: one visit stamp, one
/// predecessor and one queue slot per net, allocated once per matcher and
/// reused by every traversal — clearing between traversals is a single
/// epoch bump, never an `O(n)` reset.
#[derive(Clone, Debug)]
struct BfsArena {
    seen: Vec<u32>,
    prev: Vec<u32>,
    queue: Vec<u32>,
    epoch: u32,
}

impl BfsArena {
    fn new(n: usize) -> Self {
        BfsArena {
            seen: vec![0; n],
            prev: vec![NONE; n],
            queue: Vec::new(),
            epoch: 0,
        }
    }
}

/// Status labels from the alternating-path classification
/// (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Not reached from any unmatched vertex (member of `B'`).
    Unreached,
    /// `Even(L)`: an `L` vertex at even distance from an unmatched `L`
    /// vertex — a winner.
    EvenL,
    /// `Odd(L)`: an `R` vertex at odd distance from an unmatched `L`
    /// vertex — a loser.
    OddL,
    /// `Even(R)`: an `R` vertex at even distance from an unmatched `R`
    /// vertex — a winner.
    EvenR,
    /// `Odd(R)`: an `L` vertex at odd distance from an unmatched `R`
    /// vertex — a loser.
    OddR,
}

/// Result of classifying the vertices of `B` given a maximum matching:
/// the winner sets, the forced losers (the *critical set* of Hasan–Liu),
/// and the residual subgraph `B'` whose orientation Phase II decides.
///
/// All vertex lists hold net indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SplitClassification {
    /// `Even(L)` — winner nets on the `L` side.
    pub winners_l: Vec<u32>,
    /// `Even(R)` — winner nets on the `R` side.
    pub winners_r: Vec<u32>,
    /// `Odd(L) ∪ Odd(R)` — nets every minimum vertex cover must contain.
    pub losers: Vec<u32>,
    /// `L ∩ B'` — matched, unreached `L` vertices.
    pub bprime_l: Vec<u32>,
    /// `R ∩ B'` — matched, unreached `R` vertices.
    pub bprime_r: Vec<u32>,
}

impl SplitClassification {
    fn clear(&mut self) {
        self.winners_l.clear();
        self.winners_r.clear();
        self.losers.clear();
        self.bprime_l.clear();
        self.bprime_r.clear();
    }

    /// Flattens the classification lists into one [`NetClass`] per net —
    /// the representation the incremental [`NetClassifier`] maintains, so
    /// the two can be compared element-wise in oracle cross-checks.
    ///
    /// # Panics
    ///
    /// Panics if a listed net index is `>= num_nets`.
    pub fn net_classes(&self, num_nets: usize) -> Vec<NetClass> {
        let mut out = vec![NetClass::WinnerL; num_nets];
        for &v in &self.winners_r {
            out[v as usize] = NetClass::WinnerR;
        }
        for &v in &self.losers {
            out[v as usize] = NetClass::Loser;
        }
        for &v in &self.bprime_l {
            out[v as usize] = NetClass::BPrimeL;
        }
        for &v in &self.bprime_r {
            out[v as usize] = NetClass::BPrimeR;
        }
        out
    }
}

/// The classification of one net at the current split, from the
/// alternating-path analysis of paper Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetClass {
    /// `Even(L)` winner — pins its modules to the left side.
    WinnerL,
    /// `Even(R)` winner — pins its modules to the right side.
    WinnerR,
    /// `Odd(L) ∪ Odd(R)` — a forced loser, charged by every completion.
    Loser,
    /// Matched, unreached `L` vertex of the residual `B'`.
    BPrimeL,
    /// Matched, unreached `R` vertex of the residual `B'`.
    BPrimeR,
}

/// One net whose [`NetClass`] changed during a
/// [`NetClassifier::refresh`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetClassChange {
    /// The reclassified net.
    pub net: u32,
    /// Its class before the move.
    pub old: NetClass,
    /// Its class after the move.
    pub new: NetClass,
}

/// What one [`SplitMatcher::move_to_r`] changed: the moved net plus the
/// vertices whose matching partner changed (the detach and any augmenting
/// paths). [`NetClassifier::refresh`] keys its dirty region off this.
#[derive(Clone, Debug, Default)]
pub struct MoveDelta {
    /// The net that moved from `L` to `R`.
    pub moved: u32,
    /// The moved net's ex-partner, if it was matched before the move.
    pub detached: Option<u32>,
    /// Every vertex whose `mate` changed: the detached pair plus all
    /// vertices on the augmenting paths flipped by the repair.
    pub mates_changed: Vec<u32>,
    /// `false` iff the moved net has no intersection-graph neighbors at
    /// all, in which case `B`'s edge set and the matching are untouched
    /// and only the moved net itself reclassifies.
    pub structural: bool,
}

impl MoveDelta {
    fn reset(&mut self, moved: u32, structural: bool) {
        self.moved = moved;
        self.detached = None;
        self.mates_changed.clear();
        self.structural = structural;
    }
}

/// Maximum-matching maintenance over the crossing edges of an ordered
/// split of the intersection graph.
///
/// All nets start on the `L` side; [`move_to_r`](Self::move_to_r) slides
/// one net across and repairs the matching incrementally.
///
/// # Example
///
/// ```
/// use np_core::igmatch::SplitMatcher;
///
/// // intersection graph: 0-1, 1-2 (a path of three nets)
/// let neighbors = vec![vec![1], vec![0, 2], vec![1]];
/// let mut m = SplitMatcher::new(&neighbors);
/// assert_eq!(m.matching_size(), 0); // R empty, B empty
/// m.move_to_r(1);
/// assert_eq!(m.matching_size(), 1); // net 1 conflicts with 0 and 2
/// let c = m.classify();
/// assert_eq!(c.winners_l.len() + c.winners_r.len(), 2);
/// assert_eq!(c.losers.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMatcher {
    /// Flattened CSR adjacency of the intersection graph: the neighbors
    /// of net `v` are `adj[adj_off[v]..adj_off[v + 1]]`. One contiguous
    /// array instead of a `Vec<Vec<u32>>`, so edge scans never chase a
    /// per-row heap pointer.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    n: usize,
    side: SideBits,
    mate: Vec<u32>,
    matching: usize,
    arena: BfsArena,
}

impl SplitMatcher {
    /// Creates a matcher with every net on the `L` side.
    ///
    /// `neighbors[v]` must list the intersection-graph neighbors of net
    /// `v` (symmetric, no self-loops) — see
    /// [`intersection_neighbors`](crate::models::intersection_neighbors).
    /// The adjacency is flattened into an owned CSR layout, so the
    /// matcher does not borrow `neighbors`.
    ///
    /// # Panics
    ///
    /// Panics if the net count or total edge-endpoint count reaches
    /// `u32::MAX`.
    pub fn new(neighbors: &[Vec<u32>]) -> Self {
        let n = neighbors.len();
        assert!(n < u32::MAX as usize, "net count overflows u32 indices");
        let total: usize = neighbors.iter().map(Vec::len).sum();
        assert!(
            total < u32::MAX as usize,
            "edge count overflows u32 offsets"
        );
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(total);
        adj_off.push(0u32);
        for nb in neighbors {
            adj.extend_from_slice(nb);
            adj_off.push(adj.len() as u32);
        }
        SplitMatcher {
            adj_off,
            adj,
            n,
            side: SideBits::all_left(n),
            mate: vec![NONE; n],
            matching: 0,
            arena: BfsArena::new(n),
        }
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matcher tracks zero nets.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The intersection-graph neighbors of net `v` (flattened CSR row).
    #[inline]
    fn nbrs(&self, v: u32) -> &[u32] {
        &self.adj[self.adj_off[v as usize] as usize..self.adj_off[v as usize + 1] as usize]
    }

    /// Current size of the maintained maximum matching — by König's
    /// theorem (paper Theorems 2–3) also the size of a minimum vertex
    /// cover of `B`, i.e. the best achievable loser count for this split.
    pub fn matching_size(&self) -> usize {
        self.matching
    }

    /// The side net `v` is currently on.
    pub fn side_of(&self, v: u32) -> Side {
        self.side.side_of(v)
    }

    /// Current partner of net `v`, if matched.
    pub fn mate_of(&self, v: u32) -> Option<u32> {
        let m = self.mate[v as usize];
        (m != NONE).then_some(m)
    }

    /// Moves net `v` from `L` to `R`, repairing the matching, and returns
    /// the [`MoveDelta`] describing what changed. Use
    /// [`move_to_r_into`](Self::move_to_r_into) in hot loops to reuse the
    /// delta's buffers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already on the `R` side.
    pub fn move_to_r(&mut self, v: u32) -> MoveDelta {
        let mut delta = MoveDelta::default();
        self.move_to_r_into(v, &mut delta);
        delta
    }

    /// [`move_to_r`](Self::move_to_r) writing the delta into a reusable
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already on the `R` side.
    pub fn move_to_r_into(&mut self, v: u32, delta: &mut MoveDelta) {
        assert_eq!(
            self.side.side_of(v),
            Side::Left,
            "net {v} is already on the R side"
        );
        delta.reset(v, self.adj_off[v as usize] != self.adj_off[v as usize + 1]);
        // detach v from its partner (an R vertex), if any
        let exposed = self.mate[v as usize];
        if exposed != NONE {
            self.mate[v as usize] = NONE;
            self.mate[exposed as usize] = NONE;
            self.matching -= 1;
            delta.detached = Some(exposed);
            delta.mates_changed.push(v);
            delta.mates_changed.push(exposed);
        }
        self.side.set_right(v);
        // the exposed ex-partner may re-match through another L vertex
        if exposed != NONE {
            let flipped_from = delta.mates_changed.len();
            if self.augment_from_r(exposed, &mut delta.mates_changed) {
                self.matching += 1;
            } else {
                delta.mates_changed.truncate(flipped_from);
            }
        }
        // the moved net's edges to L are new in B; one augmentation
        // attempt restores maximality
        let flipped_from = delta.mates_changed.len();
        if self.augment_from_r(v, &mut delta.mates_changed) {
            self.matching += 1;
        } else {
            delta.mates_changed.truncate(flipped_from);
        }
    }

    /// Alternating BFS from the unmatched `R` vertex `start`; augments and
    /// returns `true` if an augmenting path to an unmatched `L` vertex
    /// exists. Vertices whose mate is flipped are appended to `flipped`
    /// (the caller truncates them away on a failed attempt).
    fn augment_from_r(&mut self, start: u32, flipped: &mut Vec<u32>) -> bool {
        debug_assert!(self.side.is_right(start));
        debug_assert_eq!(self.mate[start as usize], NONE);
        let Self {
            adj_off,
            adj,
            side,
            mate,
            arena,
            ..
        } = self;
        arena.epoch += 1;
        let epoch = arena.epoch;
        arena.queue.clear();
        arena.queue.push(start);
        let mut head = 0;
        while head < arena.queue.len() {
            let y = arena.queue[head];
            head += 1;
            for &x in &adj[adj_off[y as usize] as usize..adj_off[y as usize + 1] as usize] {
                if side.is_right(x) || arena.seen[x as usize] == epoch {
                    continue;
                }
                arena.seen[x as usize] = epoch;
                arena.prev[x as usize] = y;
                let next = mate[x as usize];
                if next == NONE {
                    // augment along the stored path
                    let mut x = x;
                    loop {
                        let y = arena.prev[x as usize];
                        let continue_from = mate[y as usize];
                        mate[x as usize] = y;
                        mate[y as usize] = x;
                        flipped.push(x);
                        flipped.push(y);
                        if continue_from == NONE {
                            return true;
                        }
                        x = continue_from;
                    }
                }
                arena.queue.push(next);
            }
        }
        false
    }

    /// Classifies all vertices into winners (`Even` sets), forced losers
    /// (`Odd` sets) and the residual `B'` (paper §3, Figure 3), writing
    /// into `out` (cleared first). `O(|V| + |E|)`.
    ///
    /// The classification is independent of which maximum matching is
    /// maintained (Hasan–Liu \[17\], paper footnote 4).
    pub fn classify_into(&mut self, out: &mut SplitClassification) {
        out.clear();
        let n = self.len();
        let mut status = vec![Status::Unreached; n];
        // Take the queue out of the arena so the BFS below can borrow
        // `self` immutably for adjacency/side/mate reads.
        let mut queue = std::mem::take(&mut self.arena.queue);

        // BFS from unmatched L vertices: Even(L) winners, Odd(L) losers
        queue.clear();
        for v in 0..n as u32 {
            if !self.side.is_right(v) && self.mate[v as usize] == NONE {
                status[v as usize] = Status::EvenL;
                queue.push(v);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            for &y in self.nbrs(x) {
                if !self.side.is_right(y) {
                    continue;
                }
                if status[y as usize] != Status::Unreached {
                    continue;
                }
                status[y as usize] = Status::OddL;
                let x2 = self.mate[y as usize];
                debug_assert_ne!(
                    x2, NONE,
                    "unmatched R vertex reachable from unmatched L vertex: \
                     matching was not maximum"
                );
                if status[x2 as usize] == Status::Unreached {
                    status[x2 as usize] = Status::EvenL;
                    queue.push(x2);
                }
            }
        }

        // BFS from unmatched R vertices: Even(R) winners, Odd(R) losers
        queue.clear();
        for v in 0..n as u32 {
            if self.side.is_right(v) && self.mate[v as usize] == NONE {
                debug_assert_eq!(status[v as usize], Status::Unreached);
                status[v as usize] = Status::EvenR;
                queue.push(v);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let y = queue[head];
            head += 1;
            for &x in self.nbrs(y) {
                if self.side.is_right(x) {
                    continue;
                }
                if status[x as usize] != Status::Unreached {
                    debug_assert_ne!(
                        status[x as usize],
                        Status::EvenL,
                        "L vertex reachable from both unmatched sides: \
                         augmenting path missed"
                    );
                    continue;
                }
                status[x as usize] = Status::OddR;
                let y2 = self.mate[x as usize];
                debug_assert_ne!(y2, NONE);
                if status[y2 as usize] == Status::Unreached {
                    status[y2 as usize] = Status::EvenR;
                    queue.push(y2);
                }
            }
        }
        self.arena.queue = queue;

        for v in 0..n as u32 {
            match status[v as usize] {
                Status::EvenL => out.winners_l.push(v),
                Status::EvenR => out.winners_r.push(v),
                Status::OddL | Status::OddR => out.losers.push(v),
                Status::Unreached => {
                    if self.side.is_right(v) {
                        out.bprime_r.push(v);
                    } else {
                        out.bprime_l.push(v);
                    }
                }
            }
        }
    }

    /// Convenience wrapper allocating a fresh [`SplitClassification`].
    pub fn classify(&mut self) -> SplitClassification {
        let mut out = SplitClassification::default();
        self.classify_into(&mut out);
        out
    }

    /// Checks that the maintained matching is a valid matching over the
    /// current crossing edges (test/debug helper).
    pub fn matching_is_valid(&self) -> bool {
        let mut count = 0usize;
        for v in 0..self.len() as u32 {
            let m = self.mate[v as usize];
            if m == NONE {
                continue;
            }
            count += 1;
            if self.mate[m as usize] != v {
                return false;
            }
            if self.side.is_right(v) == self.side.is_right(m) {
                return false;
            }
            if !self.nbrs(v).contains(&m) {
                return false;
            }
        }
        count == 2 * self.matching
    }
}

/// Incrementally-maintained winner/loser classification of every net,
/// updated in `O(Δ)` per split instead of re-running the full
/// alternating BFS (paper Figure 3) from scratch.
///
/// The key structural fact (`DESIGN.md` §11): a vertex's class depends
/// only on its connected component of `B` (alternating paths are in
/// particular `B`-paths, and every BFS seed — an unmatched vertex — that
/// can reach a component lies inside it). One `move_to_r(v)` changes only
/// edges incident to `v` and mates inside the components of `v` and its
/// ex-partner, so re-running the classification inside the current
/// components of `{v} ∪ N(v)` — and nowhere else — reproduces the
/// from-scratch result exactly. When the moved net is isolated
/// ([`MoveDelta::structural`] is `false`), the refresh is an `O(1)`
/// relabel of the moved net alone.
///
/// # Example
///
/// ```
/// use np_core::igmatch::{NetClass, NetClassifier, SplitMatcher};
///
/// let neighbors = vec![vec![1], vec![0, 2], vec![1]];
/// let mut m = SplitMatcher::new(&neighbors);
/// let mut c = NetClassifier::new(m.len());
/// let mut changes = Vec::new();
/// let delta = m.move_to_r(1);
/// c.refresh(&m, &delta, &mut changes);
/// assert_eq!(c.class_of(1), NetClass::Loser);
/// assert_eq!(c.classes(), m.classify().net_classes(3).as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct NetClassifier {
    /// Current class of every net — the maintained state.
    class: Vec<NetClass>,
    /// Flood-fill visit stamps delimiting the affected region.
    visit: Vec<u32>,
    /// Alternating-BFS reach stamps within the region.
    mark: Vec<u32>,
    /// Tentative class of vertices marked this epoch.
    newclass: Vec<NetClass>,
    epoch: u32,
    region: Vec<u32>,
    queue: Vec<u32>,
}

impl NetClassifier {
    /// Classifier for `n` nets in the initial all-`L` state, where every
    /// net is an unmatched `Even(L)` winner.
    pub fn new(n: usize) -> Self {
        NetClassifier {
            class: vec![NetClass::WinnerL; n],
            visit: vec![0; n],
            mark: vec![0; n],
            newclass: vec![NetClass::WinnerL; n],
            epoch: 0,
            region: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// Current class of net `v`.
    pub fn class_of(&self, v: u32) -> NetClass {
        self.class[v as usize]
    }

    /// Current class of every net.
    pub fn classes(&self) -> &[NetClass] {
        &self.class
    }

    /// Updates the classification after `matcher` performed the move
    /// described by `delta`, appending every reclassified net to
    /// `changes` (cleared first).
    ///
    /// A no-op (beyond relabeling the moved net) when the matching
    /// structure is untouched; otherwise the alternating BFS re-runs only
    /// inside the `B`-components containing the moved net or one of its
    /// intersection-graph neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `matcher` tracks a different net count than this
    /// classifier was built for.
    pub fn refresh(
        &mut self,
        matcher: &SplitMatcher,
        delta: &MoveDelta,
        changes: &mut Vec<NetClassChange>,
    ) {
        assert_eq!(matcher.len(), self.class.len(), "net count mismatch");
        changes.clear();
        let v = delta.moved;
        if !delta.structural {
            // isolated net: unmatched on either side, trivially Even
            debug_assert!(delta.mates_changed.is_empty());
            debug_assert_eq!(self.class[v as usize], NetClass::WinnerL);
            self.record(v, NetClass::WinnerR, changes);
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;

        // 1. Affected region: the full components (over crossing edges)
        //    of the moved net and all its neighbors. Every edge change is
        //    incident to `v`, every mate change lies on an augmenting
        //    path from `v` or its ex-partner (a neighbor of `v`), and a
        //    component split off by the move retains a neighbor of `v` —
        //    so everything that can reclassify is in here.
        self.region.clear();
        self.queue.clear();
        self.seed_region(v, epoch);
        for &u in matcher.nbrs(v) {
            self.seed_region(u, epoch);
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let u_right = matcher.side.is_right(u);
            for &w in matcher.nbrs(u) {
                if matcher.side.is_right(w) != u_right && self.visit[w as usize] != epoch {
                    self.seed_region(w, epoch);
                }
            }
        }
        debug_assert!(delta
            .mates_changed
            .iter()
            .all(|&u| self.visit[u as usize] == epoch));

        // 2. Alternating BFS from the region's unmatched `L` vertices:
        //    Even(L) winners, Odd(L) losers (paper Figure 3).
        self.queue.clear();
        for i in 0..self.region.len() {
            let u = self.region[i];
            if !matcher.side.is_right(u) && matcher.mate[u as usize] == NONE {
                self.mark[u as usize] = epoch;
                self.newclass[u as usize] = NetClass::WinnerL;
                self.queue.push(u);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            for &y in matcher.nbrs(x) {
                if !matcher.side.is_right(y) || self.mark[y as usize] == epoch {
                    continue;
                }
                self.mark[y as usize] = epoch;
                self.newclass[y as usize] = NetClass::Loser; // Odd(L)
                let x2 = matcher.mate[y as usize];
                debug_assert_ne!(
                    x2, NONE,
                    "unmatched R vertex reachable from unmatched L vertex: \
                     matching was not maximum"
                );
                if self.mark[x2 as usize] != epoch {
                    self.mark[x2 as usize] = epoch;
                    self.newclass[x2 as usize] = NetClass::WinnerL;
                    self.queue.push(x2);
                }
            }
        }

        // 3. Alternating BFS from the region's unmatched `R` vertices:
        //    Even(R) winners, Odd(R) losers.
        self.queue.clear();
        for i in 0..self.region.len() {
            let u = self.region[i];
            if matcher.side.is_right(u) && matcher.mate[u as usize] == NONE {
                debug_assert_ne!(self.mark[u as usize], epoch);
                self.mark[u as usize] = epoch;
                self.newclass[u as usize] = NetClass::WinnerR;
                self.queue.push(u);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let y = self.queue[head];
            head += 1;
            for &x in matcher.nbrs(y) {
                if matcher.side.is_right(x) {
                    continue;
                }
                if self.mark[x as usize] == epoch {
                    debug_assert_ne!(
                        self.newclass[x as usize],
                        NetClass::WinnerL,
                        "L vertex reachable from both unmatched sides: \
                         augmenting path missed"
                    );
                    continue;
                }
                self.mark[x as usize] = epoch;
                self.newclass[x as usize] = NetClass::Loser; // Odd(R)
                let y2 = matcher.mate[x as usize];
                debug_assert_ne!(y2, NONE);
                if self.mark[y2 as usize] != epoch {
                    self.mark[y2 as usize] = epoch;
                    self.newclass[y2 as usize] = NetClass::WinnerR;
                    self.queue.push(y2);
                }
            }
        }

        // 4. Finalize: unreached region vertices are matched members of
        //    B'; diff everything against the stored classes.
        for i in 0..self.region.len() {
            let u = self.region[i];
            let new = if self.mark[u as usize] == epoch {
                self.newclass[u as usize]
            } else {
                debug_assert_ne!(matcher.mate[u as usize], NONE);
                if matcher.side.is_right(u) {
                    NetClass::BPrimeR
                } else {
                    NetClass::BPrimeL
                }
            };
            self.record(u, new, changes);
        }
    }

    fn seed_region(&mut self, u: u32, epoch: u32) {
        if self.visit[u as usize] != epoch {
            self.visit[u as usize] = epoch;
            self.region.push(u);
            self.queue.push(u);
        }
    }

    fn record(&mut self, net: u32, new: NetClass, changes: &mut Vec<NetClassChange>) {
        let old = self.class[net as usize];
        if old != new {
            self.class[net as usize] = new;
            changes.push(NetClassChange { net, old, new });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum matching size over the crossing edges, for
    /// validating the incremental maintenance.
    fn brute_force_mm(neighbors: &[Vec<u32>], in_r: &[bool]) -> usize {
        fn try_kuhn(
            x: u32,
            neighbors: &[Vec<u32>],
            in_r: &[bool],
            seen: &mut [bool],
            mate: &mut [u32],
        ) -> bool {
            for &y in &neighbors[x as usize] {
                if !in_r[y as usize] || seen[y as usize] {
                    continue;
                }
                seen[y as usize] = true;
                if mate[y as usize] == NONE
                    || try_kuhn(mate[y as usize], neighbors, in_r, seen, mate)
                {
                    mate[y as usize] = x;
                    return true;
                }
            }
            false
        }
        let n = neighbors.len();
        let mut mate = vec![NONE; n];
        let mut size = 0;
        for x in 0..n as u32 {
            if in_r[x as usize] {
                continue;
            }
            let mut seen = vec![false; n];
            if try_kuhn(x, neighbors, in_r, &mut seen, &mut mate) {
                size += 1;
            }
        }
        size
    }

    fn path_graph(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i as u32 - 1);
                }
                if i + 1 < n {
                    v.push(i as u32 + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn empty_r_side_no_matching() {
        let nb = path_graph(4);
        let mut m = SplitMatcher::new(&nb);
        assert_eq!(m.matching_size(), 0);
        let c = m.classify();
        assert_eq!(c.winners_l.len(), 4);
        assert!(c.losers.is_empty());
    }

    #[test]
    fn single_move_matches_crossing_edge() {
        let nb = path_graph(3);
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        assert_eq!(m.matching_size(), 1);
        assert!(m.matching_is_valid());
        // net 1 (R) is matched to 0 or 2; the other L net is a free winner
        let c = m.classify();
        assert_eq!(c.losers.len(), 1);
        assert_eq!(c.winners_l.len() + c.winners_r.len(), 2);
    }

    #[test]
    fn incremental_matches_brute_force_on_path() {
        let nb = path_graph(9);
        let mut m = SplitMatcher::new(&nb);
        let mut in_r = vec![false; 9];
        for v in [4u32, 1, 7, 0, 8, 3] {
            m.move_to_r(v);
            in_r[v as usize] = true;
            assert!(m.matching_is_valid());
            assert_eq!(
                m.matching_size(),
                brute_force_mm(&nb, &in_r),
                "after moving {v}"
            );
        }
    }

    #[test]
    fn incremental_matches_brute_force_on_dense_graph() {
        // complete graph K7 as intersection graph
        let n = 7;
        let nb: Vec<Vec<u32>> = (0..n)
            .map(|i| (0..n as u32).filter(|&j| j != i as u32).collect())
            .collect();
        let mut m = SplitMatcher::new(&nb);
        let mut in_r = vec![false; n];
        for v in 0..n as u32 - 1 {
            m.move_to_r(v);
            in_r[v as usize] = true;
            assert!(m.matching_is_valid());
            assert_eq!(m.matching_size(), brute_force_mm(&nb, &in_r));
        }
    }

    #[test]
    fn classification_winners_are_independent() {
        // star: center 0 adjacent to 1..5
        let mut nb = vec![vec![1, 2, 3, 4, 5]];
        for _ in 0..5 {
            nb.push(vec![0]);
        }
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(0);
        assert_eq!(m.matching_size(), 1);
        let c = m.classify();
        // center is the unique loser; all leaves are winners
        assert_eq!(c.losers, vec![0]);
        assert_eq!(c.winners_l.len(), 5);
        assert!(c.winners_r.is_empty());
    }

    #[test]
    fn bprime_appears_when_no_free_vertices_reach_pairs() {
        // two disjoint crossing edges, all four vertices matched, no free
        // vertices anywhere: everything matched lands in B'
        let nb = vec![vec![1], vec![0], vec![3], vec![2]];
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        m.move_to_r(3);
        assert_eq!(m.matching_size(), 2);
        let c = m.classify();
        assert!(c.winners_l.is_empty());
        assert!(c.winners_r.is_empty());
        assert!(c.losers.is_empty());
        assert_eq!(c.bprime_l, vec![0, 2]);
        assert_eq!(c.bprime_r, vec![1, 3]);
    }

    #[test]
    fn losers_bounded_by_matching() {
        let nb = path_graph(12);
        let mut m = SplitMatcher::new(&nb);
        for v in [5u32, 2, 9, 0, 7, 11, 4] {
            m.move_to_r(v);
            let c = m.classify();
            assert!(
                c.losers.len() + c.bprime_l.len().min(c.bprime_r.len()) <= m.matching_size(),
                "after {v}: losers {} bprime {}/{} mm {}",
                c.losers.len(),
                c.bprime_l.len(),
                c.bprime_r.len(),
                m.matching_size()
            );
        }
    }

    #[test]
    fn classification_partitions_all_vertices() {
        let nb = path_graph(10);
        let mut m = SplitMatcher::new(&nb);
        for v in [3u32, 6, 1, 8] {
            m.move_to_r(v);
            let c = m.classify();
            let total = c.winners_l.len()
                + c.winners_r.len()
                + c.losers.len()
                + c.bprime_l.len()
                + c.bprime_r.len();
            assert_eq!(total, 10);
        }
    }

    #[test]
    #[should_panic(expected = "already on the R side")]
    fn double_move_panics() {
        let nb = path_graph(3);
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        m.move_to_r(1);
    }

    #[test]
    fn full_sweep_ends_with_empty_l() {
        let nb = path_graph(6);
        let mut m = SplitMatcher::new(&nb);
        for v in 0..6u32 {
            m.move_to_r(v);
        }
        assert_eq!(m.matching_size(), 0); // everything on R, B empty
        let c = m.classify();
        assert_eq!(c.winners_r.len(), 6);
    }
}
