//! Incremental maximum matching in the bipartite conflict graph of a
//! sliding net-ordering split (paper §3, Figures 3 and 5).
//!
//! As the split point slides along the sorted eigenvector, nets move one
//! at a time from `L` to `R`. The bipartite graph `B(L, R, E_B)` — whose
//! edges are the intersection-graph edges crossing the split — changes
//! only locally per move, so a maximum matching can be *maintained* rather
//! than recomputed: unmatch the moving net, try one augmenting path from
//! its exposed ex-partner, then one from the moved net itself. Each repair
//! is a single `O(|V| + |E|)` alternating BFS, giving the paper's
//! `O(|V|·(|V|+|E|))` bound over all splits (Theorem 6).

use np_netlist::Side;

const NONE: u32 = u32::MAX;

/// Status labels from the alternating-path classification
/// (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Not reached from any unmatched vertex (member of `B'`).
    Unreached,
    /// `Even(L)`: an `L` vertex at even distance from an unmatched `L`
    /// vertex — a winner.
    EvenL,
    /// `Odd(L)`: an `R` vertex at odd distance from an unmatched `L`
    /// vertex — a loser.
    OddL,
    /// `Even(R)`: an `R` vertex at even distance from an unmatched `R`
    /// vertex — a winner.
    EvenR,
    /// `Odd(R)`: an `L` vertex at odd distance from an unmatched `R`
    /// vertex — a loser.
    OddR,
}

/// Result of classifying the vertices of `B` given a maximum matching:
/// the winner sets, the forced losers (the *critical set* of Hasan–Liu),
/// and the residual subgraph `B'` whose orientation Phase II decides.
///
/// All vertex lists hold net indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SplitClassification {
    /// `Even(L)` — winner nets on the `L` side.
    pub winners_l: Vec<u32>,
    /// `Even(R)` — winner nets on the `R` side.
    pub winners_r: Vec<u32>,
    /// `Odd(L) ∪ Odd(R)` — nets every minimum vertex cover must contain.
    pub losers: Vec<u32>,
    /// `L ∩ B'` — matched, unreached `L` vertices.
    pub bprime_l: Vec<u32>,
    /// `R ∩ B'` — matched, unreached `R` vertices.
    pub bprime_r: Vec<u32>,
}

impl SplitClassification {
    fn clear(&mut self) {
        self.winners_l.clear();
        self.winners_r.clear();
        self.losers.clear();
        self.bprime_l.clear();
        self.bprime_r.clear();
    }
}

/// Maximum-matching maintenance over the crossing edges of an ordered
/// split of the intersection graph.
///
/// All nets start on the `L` side; [`move_to_r`](Self::move_to_r) slides
/// one net across and repairs the matching incrementally.
///
/// # Example
///
/// ```
/// use np_core::igmatch::SplitMatcher;
///
/// // intersection graph: 0-1, 1-2 (a path of three nets)
/// let neighbors = vec![vec![1], vec![0, 2], vec![1]];
/// let mut m = SplitMatcher::new(&neighbors);
/// assert_eq!(m.matching_size(), 0); // R empty, B empty
/// m.move_to_r(1);
/// assert_eq!(m.matching_size(), 1); // net 1 conflicts with 0 and 2
/// let c = m.classify();
/// assert_eq!(c.winners_l.len() + c.winners_r.len(), 2);
/// assert_eq!(c.losers.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMatcher<'a> {
    neighbors: &'a [Vec<u32>],
    side: Vec<Side>,
    mate: Vec<u32>,
    matching: usize,
    // BFS scratch, epoch-stamped to avoid per-call clearing
    seen: Vec<u32>,
    prev: Vec<u32>,
    epoch: u32,
    queue: Vec<u32>,
}

impl<'a> SplitMatcher<'a> {
    /// Creates a matcher with every net on the `L` side.
    ///
    /// `neighbors[v]` must list the intersection-graph neighbors of net
    /// `v` (symmetric, no self-loops) — see
    /// [`intersection_neighbors`](crate::models::intersection_neighbors).
    pub fn new(neighbors: &'a [Vec<u32>]) -> Self {
        let n = neighbors.len();
        SplitMatcher {
            neighbors,
            side: vec![Side::Left; n],
            mate: vec![NONE; n],
            matching: 0,
            seen: vec![0; n],
            prev: vec![NONE; n],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.side.len()
    }

    /// Returns `true` if the matcher tracks zero nets.
    pub fn is_empty(&self) -> bool {
        self.side.is_empty()
    }

    /// Current size of the maintained maximum matching — by König's
    /// theorem (paper Theorems 2–3) also the size of a minimum vertex
    /// cover of `B`, i.e. the best achievable loser count for this split.
    pub fn matching_size(&self) -> usize {
        self.matching
    }

    /// The side net `v` is currently on.
    pub fn side_of(&self, v: u32) -> Side {
        self.side[v as usize]
    }

    /// Current partner of net `v`, if matched.
    pub fn mate_of(&self, v: u32) -> Option<u32> {
        let m = self.mate[v as usize];
        (m != NONE).then_some(m)
    }

    /// Moves net `v` from `L` to `R`, repairing the matching.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already on the `R` side.
    pub fn move_to_r(&mut self, v: u32) {
        assert_eq!(
            self.side[v as usize],
            Side::Left,
            "net {v} is already on the R side"
        );
        // detach v from its partner (an R vertex), if any
        let exposed = self.mate[v as usize];
        if exposed != NONE {
            self.mate[v as usize] = NONE;
            self.mate[exposed as usize] = NONE;
            self.matching -= 1;
        }
        self.side[v as usize] = Side::Right;
        // the exposed ex-partner may re-match through another L vertex
        if exposed != NONE && self.augment_from_r(exposed) {
            self.matching += 1;
        }
        // the moved net's edges to L are new in B; one augmentation
        // attempt restores maximality
        if self.augment_from_r(v) {
            self.matching += 1;
        }
    }

    /// Alternating BFS from the unmatched `R` vertex `start`; augments and
    /// returns `true` if an augmenting path to an unmatched `L` vertex
    /// exists.
    fn augment_from_r(&mut self, start: u32) -> bool {
        debug_assert_eq!(self.side[start as usize], Side::Right);
        debug_assert_eq!(self.mate[start as usize], NONE);
        self.epoch += 1;
        let epoch = self.epoch;
        self.queue.clear();
        self.queue.push(start);
        let mut head = 0;
        while head < self.queue.len() {
            let y = self.queue[head];
            head += 1;
            for &x in &self.neighbors[y as usize] {
                if self.side[x as usize] != Side::Left || self.seen[x as usize] == epoch {
                    continue;
                }
                self.seen[x as usize] = epoch;
                self.prev[x as usize] = y;
                let next = self.mate[x as usize];
                if next == NONE {
                    // augment along the stored path
                    let mut x = x;
                    loop {
                        let y = self.prev[x as usize];
                        let continue_from = self.mate[y as usize];
                        self.mate[x as usize] = y;
                        self.mate[y as usize] = x;
                        if continue_from == NONE {
                            return true;
                        }
                        x = continue_from;
                    }
                }
                self.queue.push(next);
            }
        }
        false
    }

    /// Classifies all vertices into winners (`Even` sets), forced losers
    /// (`Odd` sets) and the residual `B'` (paper §3, Figure 3), writing
    /// into `out` (cleared first). `O(|V| + |E|)`.
    ///
    /// The classification is independent of which maximum matching is
    /// maintained (Hasan–Liu \[17\], paper footnote 4).
    pub fn classify_into(&mut self, out: &mut SplitClassification) {
        out.clear();
        let n = self.len();
        let mut status = vec![Status::Unreached; n];

        // BFS from unmatched L vertices: Even(L) winners, Odd(L) losers
        self.queue.clear();
        for v in 0..n as u32 {
            if self.side[v as usize] == Side::Left && self.mate[v as usize] == NONE {
                status[v as usize] = Status::EvenL;
                self.queue.push(v);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            for &y in &self.neighbors[x as usize] {
                if self.side[y as usize] != Side::Right {
                    continue;
                }
                if status[y as usize] != Status::Unreached {
                    continue;
                }
                status[y as usize] = Status::OddL;
                let x2 = self.mate[y as usize];
                debug_assert_ne!(
                    x2, NONE,
                    "unmatched R vertex reachable from unmatched L vertex: \
                     matching was not maximum"
                );
                if status[x2 as usize] == Status::Unreached {
                    status[x2 as usize] = Status::EvenL;
                    self.queue.push(x2);
                }
            }
        }

        // BFS from unmatched R vertices: Even(R) winners, Odd(R) losers
        self.queue.clear();
        for v in 0..n as u32 {
            if self.side[v as usize] == Side::Right && self.mate[v as usize] == NONE {
                debug_assert_eq!(status[v as usize], Status::Unreached);
                status[v as usize] = Status::EvenR;
                self.queue.push(v);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let y = self.queue[head];
            head += 1;
            for &x in &self.neighbors[y as usize] {
                if self.side[x as usize] != Side::Left {
                    continue;
                }
                if status[x as usize] != Status::Unreached {
                    debug_assert_ne!(
                        status[x as usize],
                        Status::EvenL,
                        "L vertex reachable from both unmatched sides: \
                         augmenting path missed"
                    );
                    continue;
                }
                status[x as usize] = Status::OddR;
                let y2 = self.mate[x as usize];
                debug_assert_ne!(y2, NONE);
                if status[y2 as usize] == Status::Unreached {
                    status[y2 as usize] = Status::EvenR;
                    self.queue.push(y2);
                }
            }
        }

        for v in 0..n as u32 {
            match status[v as usize] {
                Status::EvenL => out.winners_l.push(v),
                Status::EvenR => out.winners_r.push(v),
                Status::OddL | Status::OddR => out.losers.push(v),
                Status::Unreached => match self.side[v as usize] {
                    Side::Left => out.bprime_l.push(v),
                    Side::Right => out.bprime_r.push(v),
                },
            }
        }
    }

    /// Convenience wrapper allocating a fresh [`SplitClassification`].
    pub fn classify(&mut self) -> SplitClassification {
        let mut out = SplitClassification::default();
        self.classify_into(&mut out);
        out
    }

    /// Checks that the maintained matching is a valid matching over the
    /// current crossing edges (test/debug helper).
    pub fn matching_is_valid(&self) -> bool {
        let mut count = 0usize;
        for v in 0..self.len() as u32 {
            let m = self.mate[v as usize];
            if m == NONE {
                continue;
            }
            count += 1;
            if self.mate[m as usize] != v {
                return false;
            }
            if self.side[v as usize] == self.side[m as usize] {
                return false;
            }
            if !self.neighbors[v as usize].contains(&m) {
                return false;
            }
        }
        count == 2 * self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum matching size over the crossing edges, for
    /// validating the incremental maintenance.
    fn brute_force_mm(neighbors: &[Vec<u32>], in_r: &[bool]) -> usize {
        fn try_kuhn(
            x: u32,
            neighbors: &[Vec<u32>],
            in_r: &[bool],
            seen: &mut [bool],
            mate: &mut [u32],
        ) -> bool {
            for &y in &neighbors[x as usize] {
                if !in_r[y as usize] || seen[y as usize] {
                    continue;
                }
                seen[y as usize] = true;
                if mate[y as usize] == NONE
                    || try_kuhn(mate[y as usize], neighbors, in_r, seen, mate)
                {
                    mate[y as usize] = x;
                    return true;
                }
            }
            false
        }
        let n = neighbors.len();
        let mut mate = vec![NONE; n];
        let mut size = 0;
        for x in 0..n as u32 {
            if in_r[x as usize] {
                continue;
            }
            let mut seen = vec![false; n];
            if try_kuhn(x, neighbors, in_r, &mut seen, &mut mate) {
                size += 1;
            }
        }
        size
    }

    fn path_graph(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i as u32 - 1);
                }
                if i + 1 < n {
                    v.push(i as u32 + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn empty_r_side_no_matching() {
        let nb = path_graph(4);
        let mut m = SplitMatcher::new(&nb);
        assert_eq!(m.matching_size(), 0);
        let c = m.classify();
        assert_eq!(c.winners_l.len(), 4);
        assert!(c.losers.is_empty());
    }

    #[test]
    fn single_move_matches_crossing_edge() {
        let nb = path_graph(3);
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        assert_eq!(m.matching_size(), 1);
        assert!(m.matching_is_valid());
        // net 1 (R) is matched to 0 or 2; the other L net is a free winner
        let c = m.classify();
        assert_eq!(c.losers.len(), 1);
        assert_eq!(c.winners_l.len() + c.winners_r.len(), 2);
    }

    #[test]
    fn incremental_matches_brute_force_on_path() {
        let nb = path_graph(9);
        let mut m = SplitMatcher::new(&nb);
        let mut in_r = vec![false; 9];
        for v in [4u32, 1, 7, 0, 8, 3] {
            m.move_to_r(v);
            in_r[v as usize] = true;
            assert!(m.matching_is_valid());
            assert_eq!(
                m.matching_size(),
                brute_force_mm(&nb, &in_r),
                "after moving {v}"
            );
        }
    }

    #[test]
    fn incremental_matches_brute_force_on_dense_graph() {
        // complete graph K7 as intersection graph
        let n = 7;
        let nb: Vec<Vec<u32>> = (0..n)
            .map(|i| (0..n as u32).filter(|&j| j != i as u32).collect())
            .collect();
        let mut m = SplitMatcher::new(&nb);
        let mut in_r = vec![false; n];
        for v in 0..n as u32 - 1 {
            m.move_to_r(v);
            in_r[v as usize] = true;
            assert!(m.matching_is_valid());
            assert_eq!(m.matching_size(), brute_force_mm(&nb, &in_r));
        }
    }

    #[test]
    fn classification_winners_are_independent() {
        // star: center 0 adjacent to 1..5
        let mut nb = vec![vec![1, 2, 3, 4, 5]];
        for _ in 0..5 {
            nb.push(vec![0]);
        }
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(0);
        assert_eq!(m.matching_size(), 1);
        let c = m.classify();
        // center is the unique loser; all leaves are winners
        assert_eq!(c.losers, vec![0]);
        assert_eq!(c.winners_l.len(), 5);
        assert!(c.winners_r.is_empty());
    }

    #[test]
    fn bprime_appears_when_no_free_vertices_reach_pairs() {
        // two disjoint crossing edges, all four vertices matched, no free
        // vertices anywhere: everything matched lands in B'
        let nb = vec![vec![1], vec![0], vec![3], vec![2]];
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        m.move_to_r(3);
        assert_eq!(m.matching_size(), 2);
        let c = m.classify();
        assert!(c.winners_l.is_empty());
        assert!(c.winners_r.is_empty());
        assert!(c.losers.is_empty());
        assert_eq!(c.bprime_l, vec![0, 2]);
        assert_eq!(c.bprime_r, vec![1, 3]);
    }

    #[test]
    fn losers_bounded_by_matching() {
        let nb = path_graph(12);
        let mut m = SplitMatcher::new(&nb);
        for v in [5u32, 2, 9, 0, 7, 11, 4] {
            m.move_to_r(v);
            let c = m.classify();
            assert!(
                c.losers.len() + c.bprime_l.len().min(c.bprime_r.len()) <= m.matching_size(),
                "after {v}: losers {} bprime {}/{} mm {}",
                c.losers.len(),
                c.bprime_l.len(),
                c.bprime_r.len(),
                m.matching_size()
            );
        }
    }

    #[test]
    fn classification_partitions_all_vertices() {
        let nb = path_graph(10);
        let mut m = SplitMatcher::new(&nb);
        for v in [3u32, 6, 1, 8] {
            m.move_to_r(v);
            let c = m.classify();
            let total = c.winners_l.len()
                + c.winners_r.len()
                + c.losers.len()
                + c.bprime_l.len()
                + c.bprime_r.len();
            assert_eq!(total, 10);
        }
    }

    #[test]
    #[should_panic(expected = "already on the R side")]
    fn double_move_panics() {
        let nb = path_graph(3);
        let mut m = SplitMatcher::new(&nb);
        m.move_to_r(1);
        m.move_to_r(1);
    }

    #[test]
    fn full_sweep_ends_with_empty_l() {
        let nb = path_graph(6);
        let mut m = SplitMatcher::new(&nb);
        for v in 0..6u32 {
            m.move_to_r(v);
        }
        assert_eq!(m.matching_size(), 0); // everything on R, B empty
        let c = m.classify();
        assert_eq!(c.winners_r.len(), 6);
    }
}
