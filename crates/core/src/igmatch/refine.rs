//! Component-wise refinement of the free modules — the extension sketched
//! at the end of paper §3.
//!
//! Phase II places *all* free (`V_N`) modules on one side. The paper notes
//! that "an interesting extension of our algorithm would be to make
//! recursive calls to IG-Match in order to optimally assign modules of
//! B′, B″, etc." This module implements that idea in its simplest sound
//! form: the free modules are grouped into connected components (two free
//! modules are connected when some net contains both), and each component
//! is greedily flipped to whichever side improves the ratio cut, repeating
//! until a fixed point. Since only improving flips are kept, the result is
//! never worse than the unrefined Phase II assignment.

use np_netlist::partition::CutTracker;
use np_netlist::{Bipartition, Hypergraph, ModuleId};

/// Maximum improvement passes; each pass flips every component at most
/// once, and in practice a fixed point is reached in one or two passes.
const MAX_PASSES: usize = 8;

/// Greedily reassigns connected components of the free-module set to the
/// better side, in place. `free_mask[m]` marks the `V_N` modules of the
/// winning split.
///
/// # Panics
///
/// Panics if `free_mask.len() != hg.num_modules()` or
/// `partition.len() != hg.num_modules()`.
pub fn refine_free_components(hg: &Hypergraph, partition: &mut Bipartition, free_mask: &[bool]) {
    assert_eq!(free_mask.len(), hg.num_modules(), "mask length mismatch");
    assert_eq!(
        partition.len(),
        hg.num_modules(),
        "partition length mismatch"
    );

    let components = free_components(hg, free_mask);
    if components.is_empty() {
        return;
    }

    let mut tracker = CutTracker::from_partition(hg, partition);
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        for comp in &components {
            let before = tracker.ratio();
            // flip the whole component
            for &m in comp {
                let side = tracker.side(m);
                tracker.move_module(m, side.flip());
            }
            let after = tracker.ratio();
            if after < before {
                improved = true;
            } else {
                // revert
                for &m in comp {
                    let side = tracker.side(m);
                    tracker.move_module(m, side.flip());
                }
            }
        }
        if !improved {
            break;
        }
    }
    *partition = tracker.to_partition();
}

/// Connected components of the subgraph induced by the free modules
/// (adjacency: sharing a net), each as a sorted module list, ordered by
/// smallest member for determinism.
fn free_components(hg: &Hypergraph, free_mask: &[bool]) -> Vec<Vec<ModuleId>> {
    let mut seen = vec![false; hg.num_modules()];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in hg.modules() {
        if !free_mask[start.index()] || seen[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        seen[start.index()] = true;
        stack.push(start);
        while let Some(m) = stack.pop() {
            comp.push(m);
            for &net in hg.nets_of(m) {
                for &other in hg.pins(net) {
                    if free_mask[other.index()] && !seen[other.index()] {
                        seen[other.index()] = true;
                        stack.push(other);
                    }
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::{hypergraph_from_nets, Side};

    #[test]
    fn no_free_modules_is_noop() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let mut p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
        let before = p.clone();
        refine_free_components(&hg, &mut p, &[false; 4]);
        assert_eq!(p, before);
    }

    #[test]
    fn misplaced_component_flipped() {
        // modules 4,5 form a free component glued to the right cluster
        // but initially placed left
        let hg = hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![2, 3],
                vec![2, 4], // ties free pair to right cluster
                vec![4, 5],
            ],
        );
        let mut p =
            Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(4), ModuleId(5)]);
        let before = p.ratio_cut(&hg);
        let mut mask = [false; 6];
        mask[4] = true;
        mask[5] = true;
        refine_free_components(&hg, &mut p, &mask);
        let after = p.ratio_cut(&hg);
        assert!(after < before, "{after} !< {before}");
        assert_eq!(p.side(ModuleId(4)), Side::Right);
        assert_eq!(p.side(ModuleId(5)), Side::Right);
    }

    #[test]
    fn never_worsens() {
        let hg = hypergraph_from_nets(
            5,
            &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
        );
        for left_bits in 1..31u32 {
            let left = (0..5).filter(|i| left_bits & (1 << i) != 0).map(ModuleId);
            let mut p = Bipartition::from_left_set(5, left);
            let before = p.ratio_cut(&hg);
            refine_free_components(&hg, &mut p, &[true; 5]);
            let after = p.ratio_cut(&hg);
            assert!(
                after <= before + 1e-12,
                "bits {left_bits}: {after} > {before}"
            );
        }
    }

    #[test]
    fn components_respect_mask() {
        let hg = hypergraph_from_nets(5, &[vec![0, 1], vec![1, 2], vec![3, 4]]);
        let mask = [true, false, true, true, true];
        let comps = free_components(&hg, &mask);
        // module 1 is not free, so 0 and 2 are separate components;
        // 3-4 stay connected
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![ModuleId(0)]));
        assert!(comps.contains(&vec![ModuleId(2)]));
        assert!(comps.contains(&vec![ModuleId(3), ModuleId(4)]));
    }

    #[test]
    fn deterministic() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]]);
        let run = || {
            let mut p = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(2)]);
            refine_free_components(&hg, &mut p, &[true; 6]);
            p
        };
        assert_eq!(run(), run());
    }
}
