//! Result type shared by all partitioning algorithms.

use np_netlist::{Bipartition, CutStats, Hypergraph};
use std::fmt;

/// The outcome of a bipartitioning algorithm: the module partition, its
/// cut statistics, and where in the spectral sweep it was found.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionResult {
    /// The module bipartition.
    pub partition: Bipartition,
    /// Cut statistics of `partition` (cut nets, block sizes).
    pub stats: CutStats,
    /// Name of the producing algorithm (`"EIG1"`, `"IG-Vote"`,
    /// `"IG-Match"`, ...).
    pub algorithm: &'static str,
    /// For sweep-based algorithms, the rank of the winning split in the
    /// spectral ordering (see each algorithm's documentation for the exact
    /// meaning of the rank).
    pub split_rank: Option<usize>,
}

impl PartitionResult {
    /// Builds a result, computing the cut statistics from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != hg.num_modules()`.
    pub fn evaluate(
        hg: &Hypergraph,
        partition: Bipartition,
        algorithm: &'static str,
        split_rank: Option<usize>,
    ) -> Self {
        let stats = partition.cut_stats(hg);
        PartitionResult {
            partition,
            stats,
            algorithm,
            split_rank,
        }
    }

    /// The ratio-cut value of the partition.
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }
}

impl fmt::Display for PartitionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cut={} areas={} ratio={:.3e}",
            self.algorithm,
            self.stats.cut_nets,
            self.stats.areas(),
            self.stats.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::{hypergraph_from_nets, ModuleId};

    #[test]
    fn evaluate_computes_stats() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
        let r = PartitionResult::evaluate(&hg, p, "TEST", Some(2));
        assert_eq!(r.stats.cut_nets, 1);
        assert!((r.ratio() - 0.25).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("TEST") && s.contains("cut=1"));
    }
}
