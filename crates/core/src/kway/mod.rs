//! Balanced k-way partitioning with fixed modules, as engine stages.
//!
//! Two routes from the paper's bipartition engine to `k` blocks:
//!
//! * [`kway_recursive_ctx`] / [`KwayRecursiveStage`] — **recursive
//!   bisection**: the existing IG-Match+FM hybrid pipeline splits the
//!   module set, each side receives a proportional share of the block
//!   count and of the area budget, and recursion continues until every
//!   range holds one block. This is the §1 divide-and-conquer story run
//!   to depth `log k`.
//! * [`kway_direct_ctx`] / [`KwayDirectStage`] — **direct multiway
//!   spectral**: `d = min(k−1, 8)` successively-deflated eigenvectors of
//!   the clique-model Laplacian (block Lanczos,
//!   [`np_eigen::smallest_deflated_block_metered`]) embed the modules in
//!   `R^d`, and a deterministic seeded k-means rounding assigns blocks —
//!   the first-principles multiway generalization of EIG1's single
//!   Fiedler vector.
//!
//! Both routes share one contract, enforced by a final repair +
//! refinement phase over [`KwayCutTracker`]:
//!
//! * **balance** — every block's area stays within
//!   [`balance_bound`]`(total, k, ε)` `= (1+ε)·total/k`, and no block is
//!   empty (infeasible inputs surface as
//!   [`PartitionError::InvalidInput`]);
//! * **fixed modules** — a module pinned by [`FixedModules`] is placed on
//!   its block before repair and is never moved by repair or refinement;
//! * **k = 2 fast path** — with two blocks and no pins, both routes
//!   delegate to the exact bipartition pipeline
//!   (IG-Match + ratio-refine) and convert via
//!   [`KwayPartition::from_bipartition`], bit-identically in partition,
//!   cut statistics and metered spend.
//!
//! ```
//! use np_core::kway::{kway_partition, KwayMethod, KwayOptions};
//! use np_netlist::generate::{generate, GeneratorConfig};
//!
//! let hg = generate(&GeneratorConfig::new(120, 130, 7));
//! let opts = KwayOptions { k: 4, epsilon: 0.5, ..Default::default() };
//! let out = kway_partition(&hg, &opts, KwayMethod::Recursive)?;
//! assert_eq!(out.partition.num_blocks(), 4);
//! assert!(out.stats.max_block() as f64 <= 1.5 * 120.0 / 4.0 + 1e-9);
//! # Ok::<(), np_core::PartitionError>(())
//! ```

mod direct;
mod recursive;
pub mod refine;

pub use direct::{kway_direct_ctx, KwayDirectStage};
pub use recursive::{kway_recursive_ctx, KwayRecursiveStage};

use crate::engine::stages::{IgMatchStage, RatioRefineStage};
use crate::engine::{Pipeline, RunContext, Stage, DEFAULT_SEED};
use crate::{IgMatchOptions, PartitionError};
use np_netlist::areas::ModuleAreas;
use np_netlist::{
    balance_bound, FixedModules, Hypergraph, KwayCutStats, KwayCutTracker, KwayPartition,
};

/// Options shared by both k-way routes.
#[derive(Clone, Debug, PartialEq)]
pub struct KwayOptions {
    /// Number of blocks (`k >= 1`).
    pub k: usize,
    /// Imbalance tolerance: every block's area must stay within
    /// `(1+ε)·total/k`. Must be finite and non-negative.
    pub epsilon: f64,
    /// Module areas; `None` means uniform (every module has area 1).
    pub areas: Option<ModuleAreas>,
    /// Pre-assigned modules that must never move; `None` means all free.
    pub fixed: Option<FixedModules>,
    /// Options for the inner IG-Match runs (recursive bisection and the
    /// k = 2 fast path).
    pub ig_match: IgMatchOptions,
    /// Upper bound on refinement passes (bipartition ratio-refine on the
    /// k = 2 fast path, k-way greedy refinement otherwise).
    pub max_refine_passes: usize,
    /// Seed for the direct route's k-means rounding and eigensolve
    /// starts. The k = 2 fast path does not consume it (the pipeline's
    /// own option seeds stay authoritative).
    pub seed: u64,
}

impl Default for KwayOptions {
    fn default() -> Self {
        KwayOptions {
            k: 2,
            epsilon: 0.1,
            areas: None,
            fixed: None,
            ig_match: IgMatchOptions::default(),
            max_refine_passes: 20,
            seed: DEFAULT_SEED,
        }
    }
}

/// Which k-way route to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KwayMethod {
    /// Recursive bisection over the hybrid bipartition pipeline.
    Recursive,
    /// Direct multiway spectral embedding + seeded k-means rounding.
    Direct,
}

/// Outcome of a k-way partitioning run.
#[derive(Clone, Debug, PartialEq)]
pub struct KwayResult {
    /// The block assignment (always `opts.k` blocks, all non-empty).
    pub partition: KwayPartition,
    /// Cut statistics of `partition`, consistent by construction.
    pub stats: KwayCutStats,
    /// Which route produced the result (`"kway-recursive"` /
    /// `"kway-direct"`).
    pub algorithm: &'static str,
}

impl KwayResult {
    /// Builds a result by scoring `partition` against `hg` from scratch.
    pub fn evaluate(hg: &Hypergraph, partition: KwayPartition, algorithm: &'static str) -> Self {
        KwayResult {
            stats: partition.cut_stats(hg),
            partition,
            algorithm,
        }
    }
}

/// A k-way analog of [`Partitioner`](crate::engine::Partitioner): a unit
/// that produces a [`KwayResult`] from a hypergraph under a
/// [`RunContext`].
pub trait KwayPartitioner {
    /// Stable display name of the route.
    fn name(&self) -> &'static str;

    /// Runs the route.
    ///
    /// # Errors
    ///
    /// Route-specific failures plus the shared validation errors of
    /// [`kway_partition_ctx`].
    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<KwayResult, PartitionError>;
}

/// Runs the chosen k-way route with no resource limits.
///
/// # Errors
///
/// See [`kway_partition_ctx`].
pub fn kway_partition(
    hg: &Hypergraph,
    opts: &KwayOptions,
    method: KwayMethod,
) -> Result<KwayResult, PartitionError> {
    kway_partition_ctx(hg, opts, method, &RunContext::unlimited())
}

/// Runs the chosen k-way route against an execution context.
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] for malformed options (`k = 0`,
///   bad ε, size mismatches, pins beyond `k`, `k` exceeding the module
///   count) and for infeasible balance (a pinned or single module that
///   cannot fit any block within the bound);
/// * the inner pipeline's errors on the k = 2 fast path;
/// * [`PartitionError::Budget`] when the context meter trips.
pub fn kway_partition_ctx(
    hg: &Hypergraph,
    opts: &KwayOptions,
    method: KwayMethod,
    ctx: &RunContext<'_>,
) -> Result<KwayResult, PartitionError> {
    match method {
        KwayMethod::Recursive => kway_recursive_ctx(hg, opts, ctx),
        KwayMethod::Direct => kway_direct_ctx(hg, opts, ctx),
    }
}

/// Validated, defaulted inputs shared by both routes.
pub(crate) struct Prepared {
    pub(crate) areas: ModuleAreas,
    pub(crate) fixed: FixedModules,
    /// The per-block area capacity `(1+ε)·total/k`.
    pub(crate) bound: f64,
    /// `free[i]` iff module `i` is not pinned.
    pub(crate) free: Vec<bool>,
}

pub(crate) fn prepare(hg: &Hypergraph, opts: &KwayOptions) -> Result<Prepared, PartitionError> {
    let n = hg.num_modules();
    if opts.k == 0 {
        return Err(PartitionError::InvalidInput {
            reason: "k must be at least 1",
        });
    }
    if !(opts.epsilon.is_finite() && opts.epsilon >= 0.0) {
        return Err(PartitionError::InvalidInput {
            reason: "epsilon must be finite and non-negative",
        });
    }
    if opts.k > n {
        return Err(PartitionError::InvalidInput {
            reason: "k exceeds the module count",
        });
    }
    let areas = match &opts.areas {
        Some(a) => {
            if a.len() != n {
                return Err(PartitionError::InvalidInput {
                    reason: "area vector size mismatch",
                });
            }
            a.clone()
        }
        None => ModuleAreas::uniform(n),
    };
    let fixed = match &opts.fixed {
        Some(f) => {
            if f.len() != n {
                return Err(PartitionError::InvalidInput {
                    reason: "fixed-module vector size mismatch",
                });
            }
            if !f.fits_k(opts.k) {
                return Err(PartitionError::InvalidInput {
                    reason: "fixed module pinned to a block >= k",
                });
            }
            f.clone()
        }
        None => FixedModules::free(n),
    };
    let bound = balance_bound(areas.total(), opts.k, opts.epsilon);
    let max_area = areas.as_slice().iter().copied().fold(0.0, f64::max);
    if max_area > refine::area_cap(bound) {
        return Err(PartitionError::InvalidInput {
            reason: "balance bound below the largest module area",
        });
    }
    let mut pinned_area = vec![0.0f64; opts.k];
    for (m, b) in fixed.pins() {
        pinned_area[b] += areas.area(m);
    }
    if pinned_area.iter().any(|&a| a > refine::area_cap(bound)) {
        return Err(PartitionError::InvalidInput {
            reason: "pinned modules overflow a block's area bound",
        });
    }
    let free = (0..n)
        .map(|i| !fixed.is_pinned(np_netlist::ModuleId(i as u32)))
        .collect();
    Ok(Prepared {
        areas,
        fixed,
        bound,
        free,
    })
}

/// The exact bipartition pipeline both routes delegate to at `k = 2`:
/// IG-Match plus ratio-objective FM refinement, the same stage sequence
/// as the workspace's hybrid flow.
pub(crate) fn hybrid_pipeline(opts: &KwayOptions) -> Pipeline {
    Pipeline::named("IG-Match+FM")
        .then(IgMatchStage::new(opts.ig_match))
        .then(RatioRefineStage::new(opts.max_refine_passes, "IG-Match+FM"))
}

/// The `k = 1` trivial partition: everything in block 0, nothing cut.
pub(crate) fn trivial(hg: &Hypergraph, algorithm: &'static str) -> KwayResult {
    let partition = KwayPartition::with_num_blocks(vec![0u32; hg.num_modules()], 1);
    KwayResult::evaluate(hg, partition, algorithm)
}

/// The `k = 2`, no-pins fast path: run the bipartition pipeline on the
/// parent context (bit-identical partition, stats and metered spend),
/// convert via the shim, and touch nothing further unless the balance
/// bound is actually violated.
pub(crate) fn bipartition_fast_path(
    hg: &Hypergraph,
    opts: &KwayOptions,
    prep: &Prepared,
    ctx: &RunContext<'_>,
    algorithm: &'static str,
) -> Result<KwayResult, PartitionError> {
    let res = hybrid_pipeline(opts).run(hg, None, ctx)?;
    let partition = KwayPartition::from_bipartition(&res.partition);
    finalize(hg, partition, opts, prep, ctx, algorithm, false)
}

/// Shared final phase: place pins, repair balance, refine, score.
///
/// With `polish = false` (the k = 2 fast path) the partition is returned
/// untouched — no tracker built, no meter charged — unless a pin or the
/// balance bound is violated, preserving bit-identity with the
/// bipartition pipeline.
pub(crate) fn finalize(
    hg: &Hypergraph,
    partition: KwayPartition,
    opts: &KwayOptions,
    prep: &Prepared,
    ctx: &RunContext<'_>,
    algorithm: &'static str,
    polish: bool,
) -> Result<KwayResult, PartitionError> {
    if !polish && satisfies_contract(&partition, prep) {
        return Ok(KwayResult::evaluate(hg, partition, algorithm));
    }
    let mut tracker = KwayCutTracker::new(hg, &partition);
    tracker.set_areas(&prep.areas);
    for (m, b) in prep.fixed.pins() {
        tracker.move_module(m, b);
    }
    refine::enforce_balance(&mut tracker, &prep.free, prep.bound, ctx.meter())?;
    refine::kway_refine(
        &mut tracker,
        &prep.free,
        prep.bound,
        opts.max_refine_passes,
        ctx.meter(),
    )?;
    Ok(KwayResult::evaluate(hg, tracker.to_partition(), algorithm))
}

fn satisfies_contract(partition: &KwayPartition, prep: &Prepared) -> bool {
    if prep.fixed.pins().any(|(m, b)| partition.block_of(m) != b) {
        return false;
    }
    if partition.block_sizes().contains(&0) {
        return false;
    }
    let cap = refine::area_cap(prep.bound);
    partition.block_areas(&prep.areas).iter().all(|&a| a <= cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::ModuleId;

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(160, 170, 0xBEEF))
    }

    #[test]
    fn zero_k_rejected() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 0,
            ..Default::default()
        };
        for method in [KwayMethod::Recursive, KwayMethod::Direct] {
            assert!(matches!(
                kway_partition(&hg, &opts, method),
                Err(PartitionError::InvalidInput { .. })
            ));
        }
    }

    #[test]
    fn bad_epsilon_rejected() {
        let hg = circuit();
        for eps in [f64::NAN, f64::INFINITY, -0.5] {
            let opts = KwayOptions {
                k: 4,
                epsilon: eps,
                ..Default::default()
            };
            assert!(matches!(
                kway_partition(&hg, &opts, KwayMethod::Recursive),
                Err(PartitionError::InvalidInput { .. })
            ));
        }
    }

    #[test]
    fn k_above_module_count_rejected() {
        let hg = np_netlist::hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        let opts = KwayOptions {
            k: 4,
            ..Default::default()
        };
        assert!(matches!(
            kway_partition(&hg, &opts, KwayMethod::Direct),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn pin_beyond_k_rejected() {
        let hg = circuit();
        let mut fixed = FixedModules::free(hg.num_modules());
        fixed.pin(ModuleId(0), 7);
        let opts = KwayOptions {
            k: 4,
            fixed: Some(fixed),
            ..Default::default()
        };
        assert!(matches!(
            kway_partition(&hg, &opts, KwayMethod::Recursive),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn oversized_module_rejected() {
        let hg = np_netlist::hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let mut areas = vec![1.0; 4];
        areas[0] = 100.0;
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.0,
            areas: Some(ModuleAreas::new(areas)),
            ..Default::default()
        };
        assert!(matches!(
            kway_partition(&hg, &opts, KwayMethod::Recursive),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn k1_is_trivial_for_both_methods() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 1,
            ..Default::default()
        };
        for method in [KwayMethod::Recursive, KwayMethod::Direct] {
            let out = kway_partition(&hg, &opts, method).unwrap();
            assert_eq!(out.partition.num_blocks(), 1);
            assert_eq!(out.stats.cut_nets, 0);
            assert_eq!(out.stats.block_sizes, vec![hg.num_modules()]);
        }
    }

    #[test]
    fn evaluate_scores_from_scratch() {
        let hg = np_netlist::hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1]);
        let r = KwayResult::evaluate(&hg, p.clone(), "test");
        assert_eq!(r.stats, p.cut_stats(&hg));
        assert_eq!(r.algorithm, "test");
    }
}
