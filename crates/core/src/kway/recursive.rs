//! Recursive bisection: the hybrid bipartition pipeline applied
//! divide-and-conquer until `k` blocks exist.
//!
//! Each node of the recursion splits a module subset into a Left half
//! that will hold `⌈k/2⌉` blocks and a Right half that will hold
//! `⌊k/2⌋`, using the exact IG-Match+FM pipeline from the bipartition
//! engine. The top-level node runs on the original hypergraph under the
//! caller's [`RunContext`] — sharing its operator cache, meter and event
//! sink — while deeper nodes run on [`induced_subhypergraph`] instances
//! under a derived context (same meter, seed and thread count, fresh
//! operator cache, since the cache memoizes exactly one hypergraph).
//!
//! After each bisection the node repairs the split on a 2-way
//! [`CutTracker`]: pinned modules are forced to the side whose block
//! range contains their target, each side is topped up to at least as
//! many modules as blocks it must produce, and module area is nudged
//! toward each side's proportional share of the budget. The final k-way
//! repair in [`finalize`](super::finalize) is the hard guarantor of the
//! `(1+ε)` bound; the per-node nudging just keeps the recursion from
//! painting itself into a corner.

use super::refine::area_cap;
use super::{
    bipartition_fast_path, finalize, hybrid_pipeline, prepare, trivial, KwayOptions,
    KwayPartitioner, KwayResult, Prepared,
};
use crate::engine::{RunContext, Stage};
use crate::{PartitionError, PartitionResult};
use np_netlist::areas::ModuleAreas;
use np_netlist::induce::induced_subhypergraph;
use np_netlist::partition::CutTracker;
use np_netlist::{Bipartition, Hypergraph, KwayPartition, ModuleId, Side};

/// The recursive-bisection route as a reusable unit.
pub struct KwayRecursiveStage {
    opts: KwayOptions,
}

impl KwayRecursiveStage {
    /// Wraps the options into a stage.
    pub fn new(opts: KwayOptions) -> Self {
        KwayRecursiveStage { opts }
    }
}

impl KwayPartitioner for KwayRecursiveStage {
    fn name(&self) -> &'static str {
        "kway-recursive"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<KwayResult, PartitionError> {
        kway_recursive_ctx(hg, &self.opts, ctx)
    }
}

/// Runs recursive bisection to `opts.k` balanced blocks.
///
/// # Errors
///
/// The shared validation errors of
/// [`kway_partition_ctx`](super::kway_partition_ctx); additionally
/// [`PartitionError::InvalidInput`] when pins make some bisection level
/// unsatisfiable, and [`PartitionError::Budget`] when the meter trips.
pub fn kway_recursive_ctx(
    hg: &Hypergraph,
    opts: &KwayOptions,
    ctx: &RunContext<'_>,
) -> Result<KwayResult, PartitionError> {
    let prep = prepare(hg, opts)?;
    if opts.k == 1 {
        return Ok(trivial(hg, "kway-recursive"));
    }
    if opts.k == 2 && prep.fixed.pinned_count() == 0 {
        return bipartition_fast_path(hg, opts, &prep, ctx, "kway-recursive");
    }
    let mut block_of = vec![0u32; hg.num_modules()];
    let all: Vec<ModuleId> = hg.modules().collect();
    split(hg, &all, 0, opts.k, opts, &prep, ctx, &mut block_of, true)?;
    let partition = KwayPartition::with_num_blocks(block_of, opts.k);
    finalize(hg, partition, opts, &prep, ctx, "kway-recursive", true)
}

/// One recursion node: assign blocks `lo .. lo + k_sub` to `modules`.
#[allow(clippy::too_many_arguments)]
fn split(
    hg: &Hypergraph,
    modules: &[ModuleId],
    lo: usize,
    k_sub: usize,
    opts: &KwayOptions,
    prep: &Prepared,
    ctx: &RunContext<'_>,
    block_of: &mut [u32],
    top: bool,
) -> Result<(), PartitionError> {
    if k_sub == 1 {
        for &m in modules {
            block_of[m.index()] = lo as u32;
        }
        return Ok(());
    }
    let k_l = k_sub - k_sub / 2;
    let k_r = k_sub / 2;
    let n_sub = modules.len();
    debug_assert!(n_sub >= k_sub, "recursion invariant: enough modules");

    // Run the bipartition pipeline — on the original hypergraph under the
    // caller's context at the top, on an induced sub-instance under a
    // derived context (fresh operator cache) deeper down.
    let storage;
    let (local_hg, run_result): (&Hypergraph, Result<PartitionResult, PartitionError>) = if top {
        (hg, hybrid_pipeline(opts).run(hg, None, ctx))
    } else {
        storage = induced_subhypergraph(hg, modules);
        let child = RunContext::with_meter(ctx.meter())
            .with_seed(ctx.seed())
            .with_threads(ctx.threads());
        let r = hybrid_pipeline(opts).run(&storage.hypergraph, None, &child);
        (&storage.hypergraph, r)
    };
    let local_part = match run_result {
        Ok(r) => r.partition,
        Err(e) => {
            // Budget exhaustion is fatal wherever it surfaced (including
            // inside the eigensolver); anything else degrades to a
            // deterministic contiguous split that repair can work with.
            ctx.meter().check()?;
            if let PartitionError::Budget(b) = e {
                return Err(PartitionError::Budget(b));
            }
            fallback_split(n_sub, k_l, k_sub)
        }
    };

    let mut tracker = CutTracker::from_partition(local_hg, &local_part);
    let local_areas = ModuleAreas::new(modules.iter().map(|&m| prep.areas.area(m)).collect());
    let total_local = local_areas.total();
    tracker.set_areas(&local_areas);

    // Force every pinned module to the side whose block range holds its
    // target.
    for (i, &gm) in modules.iter().enumerate() {
        if let Some(b) = prep.fixed.block_of(gm) {
            debug_assert!(
                b >= lo && b < lo + k_sub,
                "pin routed into the wrong subtree"
            );
            let want = if b < lo + k_l {
                Side::Left
            } else {
                Side::Right
            };
            let lm = ModuleId(i as u32);
            if tracker.side(lm) != want {
                tracker.move_module(lm, want);
            }
        }
    }
    let mut left_count = modules
        .iter()
        .enumerate()
        .filter(|(i, _)| tracker.side(ModuleId(*i as u32)) == Side::Left)
        .count();

    // Top up each side to at least as many modules as blocks it must
    // produce, moving the best-gain free module across.
    loop {
        let need = if left_count < k_l {
            Side::Left
        } else if n_sub - left_count < k_r {
            Side::Right
        } else {
            break;
        };
        let mut best: Option<(i64, usize)> = None;
        for (i, &gm) in modules.iter().enumerate() {
            let lm = ModuleId(i as u32);
            if !prep.free[gm.index()] || tracker.side(lm) == need {
                continue;
            }
            let g = tracker.gain(lm);
            if best.is_none_or(|(bg, _)| g > bg) {
                best = Some((g, i));
            }
        }
        let Some((_, i)) = best else {
            return Err(PartitionError::InvalidInput {
                reason: "pins leave too few free modules for a bisection level",
            });
        };
        ctx.meter().charge(1)?;
        tracker.move_module(ModuleId(i as u32), need);
        match need {
            Side::Left => left_count += 1,
            Side::Right => left_count -= 1,
        }
    }

    // Best-effort area nudge toward each side's share of the budget. The
    // final k-way repair enforces the real bound; this only prevents the
    // recursion from handing a child more area than its blocks can hold.
    let cap_l = area_cap(prep.bound) * k_l as f64;
    let cap_r = area_cap(prep.bound) * k_r as f64;
    for _ in 0..n_sub {
        let left_area = tracker.left_area();
        let right_area = total_local - left_area;
        let from = if left_area > cap_l && left_count > k_l {
            Side::Left
        } else if right_area > cap_r && n_sub - left_count > k_r {
            Side::Right
        } else {
            break;
        };
        let room = match from {
            Side::Left => cap_r - right_area,
            Side::Right => cap_l - left_area,
        };
        let mut best: Option<(i64, usize)> = None;
        for (i, &gm) in modules.iter().enumerate() {
            let lm = ModuleId(i as u32);
            if !prep.free[gm.index()] || tracker.side(lm) != from {
                continue;
            }
            if local_areas.area(lm) > room {
                continue;
            }
            let g = tracker.gain(lm);
            if best.is_none_or(|(bg, _)| g > bg) {
                best = Some((g, i));
            }
        }
        let Some((_, i)) = best else {
            break;
        };
        ctx.meter().charge(1)?;
        tracker.move_module(ModuleId(i as u32), from.flip());
        match from {
            Side::Left => left_count -= 1,
            Side::Right => left_count += 1,
        }
    }

    // Recurse on the two sides in global module ids.
    let p = tracker.to_partition();
    let mut left_mods = Vec::with_capacity(left_count);
    let mut right_mods = Vec::with_capacity(n_sub - left_count);
    for (i, &gm) in modules.iter().enumerate() {
        match p.side(ModuleId(i as u32)) {
            Side::Left => left_mods.push(gm),
            Side::Right => right_mods.push(gm),
        }
    }
    drop(tracker);
    split(hg, &left_mods, lo, k_l, opts, prep, ctx, block_of, false)?;
    split(
        hg,
        &right_mods,
        lo + k_l,
        k_r,
        opts,
        prep,
        ctx,
        block_of,
        false,
    )
}

/// The deterministic degraded split used when the pipeline fails on a
/// sub-instance: the first `⌈n·k_l/k⌉` modules (clamped so each side can
/// still host its blocks) go Left.
fn fallback_split(n_sub: usize, k_l: usize, k_sub: usize) -> Bipartition {
    let k_r = k_sub - k_l;
    let left_n = (n_sub * k_l / k_sub).clamp(k_l, n_sub - k_r);
    Bipartition::from_left_set(n_sub, (0..left_n).map(|i| ModuleId(i as u32)))
}

#[cfg(test)]
mod tests {
    use super::super::{kway_partition, KwayMethod};
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::FixedModules;
    use np_sparse::BudgetMeter;

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(180, 200, 0x5EED))
    }

    fn assert_contract(hg: &Hypergraph, out: &KwayResult, k: usize, epsilon: f64) {
        assert_eq!(out.partition.num_blocks(), k);
        assert!(out.partition.block_sizes().iter().all(|&s| s > 0));
        let bound = np_netlist::balance_bound(hg.num_modules() as f64, k, epsilon);
        for &s in &out.stats.block_sizes {
            assert!(s as f64 <= area_cap(bound), "block of {s} exceeds {bound}");
        }
        assert_eq!(out.stats, out.partition.cut_stats(hg));
    }

    #[test]
    fn four_way_balanced() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.3,
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
        assert_eq!(out.algorithm, "kway-recursive");
        assert_contract(&hg, &out, 4, 0.3);
    }

    #[test]
    fn non_power_of_two_k() {
        let hg = circuit();
        for k in [3, 5, 7] {
            let opts = KwayOptions {
                k,
                epsilon: 0.5,
                ..Default::default()
            };
            let out = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
            assert_contract(&hg, &out, k, 0.5);
        }
    }

    #[test]
    fn pins_are_respected() {
        let hg = circuit();
        let mut fixed = FixedModules::free(hg.num_modules());
        fixed.pin(ModuleId(0), 3);
        fixed.pin(ModuleId(1), 3);
        fixed.pin(ModuleId(17), 0);
        fixed.pin(ModuleId(99), 2);
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.5,
            fixed: Some(fixed.clone()),
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
        assert_contract(&hg, &out, 4, 0.5);
        for (m, b) in fixed.pins() {
            assert_eq!(out.partition.block_of(m), b, "pin on {m} moved");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 8,
            epsilon: 0.4,
            ..Default::default()
        };
        let a = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
        let b = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn degenerate_netless_subinstances_fall_back() {
        // A single net among 9 modules: every sub-instance past the first
        // split is essentially netless, exercising the fallback split.
        let hg = np_netlist::hypergraph_from_nets(9, &[vec![0, 1]]);
        let opts = KwayOptions {
            k: 3,
            epsilon: 0.5,
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Recursive).unwrap();
        assert_contract(&hg, &out, 3, 0.5);
    }

    #[test]
    fn zero_budget_trips() {
        let hg = circuit();
        let meter = BudgetMeter::new(&np_sparse::Budget::default().with_matvecs(0));
        let ctx = RunContext::with_meter(&meter);
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.5,
            ..Default::default()
        };
        assert!(matches!(
            kway_recursive_ctx(&hg, &opts, &ctx),
            Err(PartitionError::Budget(_))
        ));
    }
}
