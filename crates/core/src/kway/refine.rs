//! Balance repair and greedy k-way refinement over [`KwayCutTracker`].
//!
//! Both k-way routes produce a raw assignment first (recursive bisection
//! or spectral rounding) and then pass through the same two phases here:
//! [`enforce_balance`] makes the assignment *feasible* — every block
//! non-empty and within the `(1+ε)·total/k` area bound — moving only free
//! modules, and [`kway_refine`] is the FM-flavoured cleanup: repeated
//! index-order sweeps that relocate a free module whenever some other
//! block offers a strictly positive net-cut gain without breaking
//! feasibility. Pinned modules are invisible to both phases.

use crate::PartitionError;
use np_netlist::{KwayCutTracker, ModuleId};
use np_sparse::BudgetMeter;

/// The effective per-block capacity used for feasibility checks: the
/// exact bound plus a relative-and-absolute slack so that floating-point
/// area accumulation never flags a mathematically tight packing (for
/// example `ε = 0` with unit areas and `k | n`) as infeasible.
pub fn area_cap(bound: f64) -> f64 {
    bound * (1.0 + 1e-12) + 1e-12
}

/// Repairs `tracker` into a feasible state: every block non-empty and
/// every block's area at most [`area_cap`]`(bound)`. Only modules with
/// `free[m]` are moved. Among equally attractive moves the lowest module
/// index and then the lowest target block win, so repair is
/// deterministic.
///
/// # Errors
///
/// [`PartitionError::InvalidInput`] when no sequence of free-module moves
/// can reach feasibility (for example all movable area is pinned away
/// from an empty block), [`PartitionError::Budget`] when `meter` trips.
pub fn enforce_balance(
    tracker: &mut KwayCutTracker<'_>,
    free: &[bool],
    bound: f64,
    meter: &BudgetMeter,
) -> Result<(), PartitionError> {
    let k = tracker.k();
    let n = free.len();
    let cap = area_cap(bound);

    // Phase 1: populate empty blocks. Pull the best-gain free module out
    // of some block that can spare one (count >= 2).
    loop {
        meter.check()?;
        let Some(empty) = (0..k).find(|&b| tracker.block_counts()[b] == 0) else {
            break;
        };
        let mut best: Option<(i64, usize)> = None;
        for (i, &is_free) in free.iter().enumerate() {
            if !is_free {
                continue;
            }
            let m = ModuleId(i as u32);
            let from = tracker.block_of(m);
            if tracker.block_counts()[from] < 2 {
                continue;
            }
            if tracker.block_areas()[empty] + tracker.area_of(m) > cap {
                continue;
            }
            let g = tracker.gain(m, empty);
            if best.is_none_or(|(bg, _)| g > bg) {
                best = Some((g, i));
            }
        }
        let Some((_, i)) = best else {
            return Err(PartitionError::InvalidInput {
                reason: "cannot populate every block with the free modules available",
            });
        };
        meter.charge(1)?;
        tracker.move_module(ModuleId(i as u32), empty);
    }

    // Phase 2: drain overfull blocks. Always work on the most-overfull
    // block; prefer the best-gain move that lands within the cap, and
    // fall back to any move that strictly decreases total overflow.
    let max_steps = 4 * n + 64;
    for _ in 0..max_steps {
        meter.check()?;
        let worst = (0..k)
            .filter(|&b| tracker.block_areas()[b] > cap)
            .max_by(|&a, &b| {
                tracker.block_areas()[a]
                    .partial_cmp(&tracker.block_areas()[b])
                    .unwrap()
            });
        let Some(worst) = worst else {
            return Ok(());
        };
        let overflow: f64 = (0..k)
            .map(|b| (tracker.block_areas()[b] - cap).max(0.0))
            .sum();
        // Preferred: a move out of `worst` into a block that stays legal.
        let mut best: Option<(i64, usize, usize)> = None;
        // Fallback: the move (from `worst`) that most reduces overflow.
        let mut fallback: Option<(f64, usize, usize)> = None;
        for (i, &is_free) in free.iter().enumerate() {
            if !is_free {
                continue;
            }
            let m = ModuleId(i as u32);
            if tracker.block_of(m) != worst || tracker.block_counts()[worst] < 2 {
                continue;
            }
            let a = tracker.area_of(m);
            for to in 0..k {
                if to == worst {
                    continue;
                }
                if tracker.block_areas()[to] + a <= cap {
                    let g = tracker.gain(m, to);
                    if best.is_none_or(|(bg, bi, bt)| {
                        (g, -(i as i64), -(to as i64)) > (bg, -(bi as i64), -(bt as i64))
                    }) {
                        best = Some((g, i, to));
                    }
                } else {
                    // Moving into another (possibly overfull) block still
                    // helps iff total overflow strictly drops.
                    let shed = (tracker.block_areas()[worst] - cap).min(a).max(0.0);
                    let added = (tracker.block_areas()[to] + a - cap).max(0.0)
                        - (tracker.block_areas()[to] - cap).max(0.0);
                    let delta = shed - added;
                    if delta > 1e-12 && fallback.is_none_or(|(fd, _, _)| delta > fd + 1e-12) {
                        fallback = Some((delta, i, to));
                    }
                }
            }
        }
        let (i, to) = match (best, fallback) {
            (Some((_, i, to)), _) => (i, to),
            (None, Some((_, i, to))) => (i, to),
            (None, None) => {
                return Err(PartitionError::InvalidInput {
                    reason: "balance bound infeasible for the free modules available",
                });
            }
        };
        meter.charge(1)?;
        tracker.move_module(ModuleId(i as u32), to);
        // Safety net against pathological oscillation: demand progress.
        let new_overflow: f64 = (0..k)
            .map(|b| (tracker.block_areas()[b] - cap).max(0.0))
            .sum();
        if new_overflow >= overflow + 1e-9 {
            return Err(PartitionError::InvalidInput {
                reason: "balance repair failed to make progress",
            });
        }
    }
    if (0..k).all(|b| tracker.block_areas()[b] <= cap) {
        Ok(())
    } else {
        Err(PartitionError::InvalidInput {
            reason: "balance repair exceeded its step budget",
        })
    }
}

/// Greedy k-way refinement: up to `max_passes` index-order sweeps, each
/// moving a free module to the best strictly-positive-gain block that
/// fits under the cap and does not empty its source block. Stops early on
/// a sweep with no moves. Charges `meter` once per pass.
///
/// # Errors
///
/// [`PartitionError::Budget`] when `meter` trips.
pub fn kway_refine(
    tracker: &mut KwayCutTracker<'_>,
    free: &[bool],
    bound: f64,
    max_passes: usize,
    meter: &BudgetMeter,
) -> Result<usize, PartitionError> {
    let k = tracker.k();

    let cap = area_cap(bound);
    let mut total_moves = 0usize;
    for _ in 0..max_passes {
        meter.charge(1)?;
        let mut moved = 0usize;
        for (i, &is_free) in free.iter().enumerate() {
            if !is_free {
                continue;
            }
            let m = ModuleId(i as u32);
            let from = tracker.block_of(m);
            if tracker.block_counts()[from] < 2 {
                continue;
            }
            let a = tracker.area_of(m);
            let mut best: Option<(i64, usize)> = None;
            for to in 0..k {
                if to == from || tracker.block_areas()[to] + a > cap {
                    continue;
                }
                let g = tracker.gain(m, to);
                if g > 0 && best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, to));
                }
            }
            if let Some((_, to)) = best {
                tracker.move_module(m, to);
                moved += 1;
            }
        }
        total_moves += moved;
        if moved == 0 {
            break;
        }
    }
    Ok(total_moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::areas::ModuleAreas;
    use np_netlist::{hypergraph_from_nets, KwayPartition};

    #[test]
    fn fills_empty_blocks() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![2, 3], vec![4, 5]]);
        let p = KwayPartition::with_num_blocks(vec![0, 0, 0, 0, 0, 0], 3);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(6));
        let free = vec![true; 6];
        enforce_balance(&mut t, &free, 2.0, &BudgetMeter::unlimited()).unwrap();
        assert!(t.block_counts().iter().all(|&c| c > 0));
        assert!(t.block_areas().iter().all(|&a| a <= area_cap(2.0)));
    }

    #[test]
    fn drains_overfull_blocks() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1, 2], vec![3, 4, 5]]);
        let p = KwayPartition::with_num_blocks(vec![0, 0, 0, 0, 0, 1], 2);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(6));
        let free = vec![true; 6];
        enforce_balance(&mut t, &free, 3.0, &BudgetMeter::unlimited()).unwrap();
        assert!(t.block_areas().iter().all(|&a| a <= area_cap(3.0)));
        // The gain-guided drain moves 3 then 4 across, reuniting the
        // {3,4,5} net in block 1 and keeping {0,1,2} whole.
        assert_eq!(t.cut_nets(), 0);
    }

    #[test]
    fn respects_pins_when_repairing() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let p = KwayPartition::with_num_blocks(vec![0, 0, 0, 1], 2);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(4));
        // modules 0 and 1 pinned: only 2 may drain block 0
        let free = vec![false, false, true, true];
        enforce_balance(&mut t, &free, 2.0, &BudgetMeter::unlimited()).unwrap();
        assert_eq!(t.block_of(ModuleId(0)), 0);
        assert_eq!(t.block_of(ModuleId(1)), 0);
        assert_eq!(t.block_of(ModuleId(2)), 1);
    }

    #[test]
    fn infeasible_when_everything_pinned() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let p = KwayPartition::with_num_blocks(vec![0, 0, 0, 0], 2);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(4));
        let free = vec![false; 4];
        assert!(matches!(
            enforce_balance(&mut t, &free, 2.0, &BudgetMeter::unlimited()),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn refine_improves_and_respects_bounds() {
        // Two cliques of 4 with one bridge; start with a deliberately bad
        // split that strands module 4 on the wrong side.
        let nets: Vec<Vec<u32>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![4, 5],
            vec![5, 6],
            vec![6, 7],
            vec![4, 7],
            vec![4, 6],
            vec![3, 4],
        ];
        let hg = hypergraph_from_nets(8, &nets);
        let p = KwayPartition::with_num_blocks(vec![0, 0, 0, 0, 0, 1, 1, 1], 2);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(8));
        let free = vec![true; 8];
        let before = t.cut_nets();
        let moves = kway_refine(&mut t, &free, 5.0, 10, &BudgetMeter::unlimited()).unwrap();
        assert!(moves > 0);
        assert!(t.cut_nets() < before);
        assert!(t.block_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn refine_charges_meter_per_pass() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let p = KwayPartition::with_num_blocks(vec![0, 1, 0, 1], 2);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::uniform(4));
        let meter = BudgetMeter::new(&np_sparse::Budget::default().with_matvecs(0));
        let free = vec![true; 4];
        assert!(matches!(
            kway_refine(&mut t, &free, 2.5, 3, &meter),
            Err(PartitionError::Budget(_))
        ));
    }
}
