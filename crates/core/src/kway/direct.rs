//! Direct multiway spectral partitioning: a `d`-dimensional Laplacian
//! eigenvector embedding rounded by deterministic seeded k-means.
//!
//! Where EIG1 orders modules by the single Fiedler vector, the k-way
//! generalization embeds module `m` at
//! `(u₂[m], …, u_{d+1}[m]) ∈ R^d` with `d = min(k−1, 8)` — the smallest
//! non-trivial eigenvectors of the clique-model Laplacian, obtained by
//! successive deflation through the metered block-Lanczos solver (the
//! all-ones nullvector plus every previously found vector is deflated,
//! so each solve returns the next eigenvector up the spectrum). Lloyd's
//! algorithm with farthest-first seeding then clusters the embedding
//! into `k` blocks; pinned modules both seed their blocks' centers and
//! stay assigned to them throughout, so fixed modules shape the
//! geometry instead of fighting it. Everything is deterministic given
//! `opts.seed`, and every matvec and Lloyd iteration charges the
//! context meter.

use super::{
    bipartition_fast_path, finalize, prepare, trivial, KwayOptions, KwayPartitioner, KwayResult,
};
use crate::engine::RunContext;
use crate::PartitionError;
use np_eigen::{smallest_deflated_block_metered, BlockLanczosOptions};
use np_netlist::rng::{derive_seed, Rng64};
use np_netlist::{Hypergraph, KwayPartition, ModuleId};

/// The direct multiway spectral route as a reusable unit.
pub struct KwayDirectStage {
    opts: KwayOptions,
}

impl KwayDirectStage {
    /// Wraps the options into a stage.
    pub fn new(opts: KwayOptions) -> Self {
        KwayDirectStage { opts }
    }
}

impl KwayPartitioner for KwayDirectStage {
    fn name(&self) -> &'static str {
        "kway-direct"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<KwayResult, PartitionError> {
        kway_direct_ctx(hg, &self.opts, ctx)
    }
}

/// Maximum embedding dimension; beyond `d = 8` additional eigenvectors
/// stop paying for their solves on the instance sizes this workspace
/// targets.
const MAX_DIM: usize = 8;

/// Lloyd iterations for the k-means rounding.
const KMEANS_ITERS: usize = 20;

/// Seed stream tag separating the k-means start from the eigensolves.
const KMEANS_STREAM: u64 = 0x005E_ED0C;

/// Runs direct multiway spectral partitioning to `opts.k` balanced
/// blocks.
///
/// # Errors
///
/// The shared validation errors of
/// [`kway_partition_ctx`](super::kway_partition_ctx); additionally
/// [`PartitionError::Eigen`] when not even the first non-trivial
/// eigenvector can be computed, and [`PartitionError::Budget`] when the
/// meter trips.
pub fn kway_direct_ctx(
    hg: &Hypergraph,
    opts: &KwayOptions,
    ctx: &RunContext<'_>,
) -> Result<KwayResult, PartitionError> {
    let prep = prepare(hg, opts)?;
    if opts.k == 1 {
        return Ok(trivial(hg, "kway-direct"));
    }
    if opts.k == 2 && prep.fixed.pinned_count() == 0 {
        return bipartition_fast_path(hg, opts, &prep, ctx, "kway-direct");
    }
    let n = hg.num_modules();
    let d = (opts.k - 1).min(MAX_DIM).min(n.saturating_sub(1)).max(1);
    let coords = embed(hg, d, opts, ctx)?;
    let labels = kmeans(&coords, opts.k, opts.seed, &prep, ctx)?;
    let partition = KwayPartition::with_num_blocks(labels, opts.k);
    finalize(hg, partition, opts, &prep, ctx, "kway-direct", true)
}

/// Computes the embedding: `coords[m]` is module `m`'s position in
/// `R^d`, column `j` being the `(j+2)`-th smallest Laplacian
/// eigenvector. Returns fewer than `d` columns only when a later solve
/// fails non-fatally (the partial embedding still separates the
/// dominant clusters).
fn embed(
    hg: &Hypergraph,
    d: usize,
    opts: &KwayOptions,
    ctx: &RunContext<'_>,
) -> Result<Vec<Vec<f64>>, PartitionError> {
    let n = hg.num_modules();
    let lap = ctx.clique_laplacian(hg);
    let ones = vec![1.0 / (n as f64).sqrt(); n];
    let mut deflate: Vec<Vec<f64>> = vec![ones];
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(d);
    for j in 0..d {
        let mut eopts = BlockLanczosOptions::default();
        eopts.base.seed = derive_seed(opts.seed, 0xE16 + j as u64);
        match smallest_deflated_block_metered(lap.as_ref(), &deflate, &eopts, ctx.meter()) {
            Ok(pair) => {
                deflate.push(pair.vector.clone());
                columns.push(pair.vector);
            }
            Err(e) => {
                let e = PartitionError::from(e);
                if matches!(e, PartitionError::Budget(_)) || columns.is_empty() {
                    return Err(e);
                }
                // A later eigenvector failing to converge degrades to a
                // lower-dimensional embedding rather than failing the run.
                break;
            }
        }
    }
    let dim = columns.len();
    let mut coords = vec![vec![0.0f64; dim]; n];
    for (j, col) in columns.iter().enumerate() {
        for (m, &v) in col.iter().enumerate() {
            coords[m][j] = v;
        }
    }
    Ok(coords)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic seeded k-means over the embedding. Blocks with pinned
/// modules start at the centroid of their pins; the remaining centers
/// are placed farthest-first. Pinned modules are never reassigned. Ties
/// always break toward the lowest index, so the rounding is a pure
/// function of `(coords, k, seed, pins)`.
fn kmeans(
    coords: &[Vec<f64>],
    k: usize,
    seed: u64,
    prep: &super::Prepared,
    ctx: &RunContext<'_>,
) -> Result<Vec<u32>, PartitionError> {
    let n = coords.len();
    let dim = coords.first().map_or(0, Vec::len);
    let mut centers: Vec<Option<Vec<f64>>> = vec![None; k];

    // Pinned blocks: center at the centroid of the pins.
    let mut pin_sums = vec![vec![0.0f64; dim]; k];
    let mut pin_counts = vec![0usize; k];
    for (m, b) in prep.fixed.pins() {
        for (j, s) in pin_sums[b].iter_mut().enumerate() {
            *s += coords[m.index()][j];
        }
        pin_counts[b] += 1;
    }
    for b in 0..k {
        if pin_counts[b] > 0 {
            let c = pin_sums[b]
                .iter()
                .map(|s| s / pin_counts[b] as f64)
                .collect();
            centers[b] = Some(c);
        }
    }

    // Remaining blocks: farthest-first. With no pins at all, the first
    // center is a seeded random module.
    let mut rng = Rng64::new(derive_seed(seed, KMEANS_STREAM));
    for b in 0..k {
        if centers[b].is_some() {
            continue;
        }
        let placed: Vec<&Vec<f64>> = centers.iter().flatten().collect();
        let pick = if placed.is_empty() {
            rng.gen_range(n)
        } else {
            let mut best = (f64::NEG_INFINITY, 0usize);
            for (m, c) in coords.iter().enumerate() {
                let dmin = placed
                    .iter()
                    .map(|p| dist2(c, p))
                    .fold(f64::INFINITY, f64::min);
                if dmin > best.0 {
                    best = (dmin, m);
                }
            }
            best.1
        };
        centers[b] = Some(coords[pick].clone());
    }
    let mut centers: Vec<Vec<f64>> = centers.into_iter().map(Option::unwrap).collect();

    let mut labels = vec![0u32; n];
    for _ in 0..KMEANS_ITERS {
        ctx.meter().charge(1)?;
        // Assign: pins forced, everyone else to the nearest center
        // (ties to the lowest block index).
        let mut changed = false;
        for m in 0..n {
            let b = match prep.fixed.block_of(ModuleId(m as u32)) {
                Some(b) => b,
                None => {
                    let mut best = (f64::INFINITY, 0usize);
                    for (c, center) in centers.iter().enumerate() {
                        let dd = dist2(&coords[m], center);
                        if dd < best.0 {
                            best = (dd, c);
                        }
                    }
                    best.1
                }
            };
            if labels[m] != b as u32 {
                labels[m] = b as u32;
                changed = true;
            }
        }
        // Update centers; an empty cluster reseeds at the farthest free
        // point taken from a cluster that can spare one.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for m in 0..n {
            let b = labels[m] as usize;
            for (j, s) in sums[b].iter_mut().enumerate() {
                *s += coords[m][j];
            }
            counts[b] += 1;
        }
        for b in 0..k {
            if counts[b] > 0 {
                for (j, s) in sums[b].iter().enumerate() {
                    centers[b][j] = s / counts[b] as f64;
                }
            } else {
                let mut best = (f64::NEG_INFINITY, None);
                for m in 0..n {
                    let from = labels[m] as usize;
                    if counts[from] < 2 || !prep.free[m] {
                        continue;
                    }
                    let dd = dist2(&coords[m], &centers[labels[m] as usize]);
                    if dd > best.0 {
                        best = (dd, Some(m));
                    }
                }
                if let Some(m) = best.1 {
                    centers[b] = coords[m].clone();
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::super::{kway_partition, KwayMethod};
    use super::*;
    use crate::kway::refine::area_cap;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::FixedModules;
    use np_sparse::BudgetMeter;

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(150, 170, 0xD1CE))
    }

    fn assert_contract(hg: &Hypergraph, out: &KwayResult, k: usize, epsilon: f64) {
        assert_eq!(out.partition.num_blocks(), k);
        assert!(out.partition.block_sizes().iter().all(|&s| s > 0));
        let bound = np_netlist::balance_bound(hg.num_modules() as f64, k, epsilon);
        for &s in &out.stats.block_sizes {
            assert!(s as f64 <= area_cap(bound), "block of {s} exceeds {bound}");
        }
        assert_eq!(out.stats, out.partition.cut_stats(hg));
    }

    #[test]
    fn four_way_balanced() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.4,
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
        assert_eq!(out.algorithm, "kway-direct");
        assert_contract(&hg, &out, 4, 0.4);
    }

    #[test]
    fn pins_are_respected() {
        let hg = circuit();
        let mut fixed = FixedModules::free(hg.num_modules());
        fixed.pin(ModuleId(3), 2);
        fixed.pin(ModuleId(50), 0);
        fixed.pin(ModuleId(51), 0);
        let opts = KwayOptions {
            k: 3,
            epsilon: 0.5,
            fixed: Some(fixed.clone()),
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
        assert_contract(&hg, &out, 3, 0.5);
        for (m, b) in fixed.pins() {
            assert_eq!(out.partition.block_of(m), b, "pin on {m} moved");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let hg = circuit();
        let opts = KwayOptions {
            k: 6,
            epsilon: 0.4,
            ..Default::default()
        };
        let a = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
        let b = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn seed_changes_are_contained() {
        // Different seeds may legitimately round differently, but both
        // results must satisfy the same contract.
        let hg = circuit();
        for seed in [1u64, 2, 3] {
            let opts = KwayOptions {
                k: 5,
                epsilon: 0.5,
                seed,
                ..Default::default()
            };
            let out = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
            assert_contract(&hg, &out, 5, 0.5);
        }
    }

    #[test]
    fn separates_planted_clusters() {
        // Three cliques with single bridges: the embedding should
        // recover them exactly.
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for c in 0..3u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    nets.push(vec![base + i, base + j]);
                }
            }
        }
        nets.push(vec![3, 4]);
        nets.push(vec![7, 8]);
        let hg = np_netlist::hypergraph_from_nets(12, &nets);
        let opts = KwayOptions {
            k: 3,
            epsilon: 0.0,
            ..Default::default()
        };
        let out = kway_partition(&hg, &opts, KwayMethod::Direct).unwrap();
        assert_contract(&hg, &out, 3, 0.0);
        assert_eq!(out.stats.cut_nets, 2, "only the two bridges are cut");
    }

    #[test]
    fn zero_budget_trips() {
        let hg = circuit();
        let meter = BudgetMeter::new(&np_sparse::Budget::default().with_matvecs(0));
        let ctx = RunContext::with_meter(&meter);
        let opts = KwayOptions {
            k: 4,
            epsilon: 0.5,
            ..Default::default()
        };
        assert!(matches!(
            kway_direct_ctx(&hg, &opts, &ctx),
            Err(PartitionError::Budget(_))
        ));
    }
}
