//! `np-part` — command-line ratio-cut partitioner.
//!
//! Reads a netlist in hMETIS `.hgr` format, partitions it with the chosen
//! algorithm, prints the cut statistics and optionally writes the
//! partition (one `0`/`1` per module line, hMETIS convention).
//!
//! ```text
//! np-part INPUT.hgr [--algorithm igmatch|igvote|eig1|rcut|fm|kl|hybrid|robust]
//!                   [--refine] [--weighting paper|uniform|shared-count|size-scaled]
//!                   [--budget-ms MS] [--fallback] [--trace]
//!                   [--output PART_FILE] [--table]
//! ```
//!
//! Every algorithm is an engine [`Stage`] assembled from the CLI flags
//! and run against one shared [`RunContext`], so `--budget-ms` (a
//! wall-clock cap on the whole run) applies uniformly and `--trace`
//! streams the stage graph — including the links of the robust fallback
//! chain and the stages of the hybrid pipeline — to stderr as it
//! executes.
//!
//! `--fallback` is shorthand for `--algorithm robust`: run the resilient
//! chain that falls back from IG-Match through reseeded Lanczos, a dense
//! eigensolve and clique-model EIG1 down to plain FM, printing which
//! stage produced the answer. An exhausted budget exits with a
//! structured error.

use ig_match_repro::core::engine::run_stage;
use ig_match_repro::core::engine::stages::{
    Eig1Stage, FmStage, IgMatchStage, IgVoteStage, KlStage, RcutStage,
};
use ig_match_repro::hybrid::{hybrid_pipeline, HybridOptions};
use ig_match_repro::netlist::io::read_hgr;
use ig_match_repro::netlist::stats::{CutBySize, NetlistSummary};
use ig_match_repro::sparse::{Budget, BudgetMeter};
use ig_match_repro::{
    robust_partition_ctx, Bipartition, IgMatchOptions, IgVoteOptions, IgWeighting, RobustOptions,
    RunContext, Side, Stage, StageEvent,
};
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Args {
    input: String,
    algorithm: String,
    weighting: IgWeighting,
    refine: bool,
    budget_ms: Option<u64>,
    trace: bool,
    output: Option<String>,
    table: bool,
}

const USAGE: &str =
    "usage: np-part INPUT.hgr [--algorithm igmatch|igvote|eig1|rcut|fm|kl|hybrid|robust] \
                     [--refine] [--weighting paper|uniform|shared-count|size-scaled] \
                     [--budget-ms MS] [--fallback] [--trace] [--output FILE] [--table]";

fn parse_args<I>(args: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut input = None;
    let mut algorithm = "igmatch".to_string();
    let mut weighting = IgWeighting::Paper;
    let mut refine = false;
    let mut budget_ms = None;
    let mut trace = false;
    let mut output = None;
    let mut table = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--algorithm" => {
                algorithm = iter.next().ok_or("--algorithm needs a value")?;
            }
            "--weighting" => {
                let w = iter.next().ok_or("--weighting needs a value")?;
                weighting = IgWeighting::ALL
                    .into_iter()
                    .find(|x| x.name() == w)
                    .ok_or_else(|| format!("unknown weighting '{w}'"))?;
            }
            "--refine" => refine = true,
            "--fallback" => algorithm = "robust".to_string(),
            "--budget-ms" => {
                let v = iter.next().ok_or("--budget-ms needs a value")?;
                budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget-ms expects milliseconds, got '{v}'"))?,
                );
            }
            "--trace" => trace = true,
            "--table" => table = true,
            "--output" => output = Some(iter.next().ok_or("--output needs a value")?),
            "--help" | "-h" => return Err(USAGE.into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Args {
        input: input.ok_or(USAGE)?,
        algorithm,
        weighting,
        refine,
        budget_ms,
        trace,
        output,
        table,
    })
}

/// Resolves `--budget-ms` into a [`Budget`]; `None` means unlimited.
fn budget_of(args: &Args) -> Budget {
    match args.budget_ms {
        Some(ms) => Budget::UNLIMITED.with_wall_clock(Duration::from_millis(ms)),
        None => Budget::UNLIMITED,
    }
}

/// Builds the engine stage the CLI flags describe. `robust` is handled
/// separately (its chain reports structured diagnostics).
fn stage_for(args: &Args) -> Result<Box<dyn Stage>, String> {
    let ig_match = IgMatchOptions {
        weighting: args.weighting,
        refine_free_modules: args.refine,
        ..Default::default()
    };
    Ok(match args.algorithm.as_str() {
        "igmatch" => Box::new(IgMatchStage::new(ig_match)),
        "igvote" => Box::new(IgVoteStage::new(IgVoteOptions {
            weighting: args.weighting,
            ..Default::default()
        })),
        "eig1" => Box::new(Eig1Stage::default()),
        "rcut" => Box::new(RcutStage::default()),
        "fm" => Box::new(FmStage::default()),
        "kl" => Box::new(KlStage::default()),
        "hybrid" => Box::new(hybrid_pipeline(&HybridOptions {
            ig_match,
            ..Default::default()
        })),
        other => return Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    let file =
        std::fs::File::open(&args.input).map_err(|e| format!("cannot open {}: {e}", args.input))?;
    let hg = read_hgr(BufReader::new(file)).map_err(|e| format!("parse failed: {e}"))?;
    eprintln!("{}: {}", args.input, NetlistSummary::of(&hg));

    let budget = budget_of(&args);
    let meter = BudgetMeter::new(&budget);
    let trace = args.trace;
    // details (e.g. IG-Match's matching bound) always go to stderr; the
    // per-stage start/finish stream only with --trace
    let sink = move |e: &StageEvent<'_>| match e {
        StageEvent::Detail { stage, message } => eprintln!("{stage}: {message}"),
        StageEvent::Started { stage } if trace => eprintln!("-> {stage}"),
        StageEvent::Finished { stage, outcome } if trace => match outcome {
            Ok(r) => eprintln!("<- {stage}: ratio {:.3e}", r.ratio()),
            Err(e) => eprintln!("<- {stage}: failed: {e}"),
        },
        _ => {}
    };
    let ctx = RunContext::with_meter(&meter).with_events(&sink);

    let (label, partition): (String, Bipartition) = if args.algorithm == "robust" {
        let opts = RobustOptions {
            ig_match: IgMatchOptions {
                weighting: args.weighting,
                refine_free_modules: args.refine,
                ..Default::default()
            },
            ..Default::default()
        };
        match robust_partition_ctx(&hg, &opts, &ctx) {
            Ok(outcome) => {
                eprintln!("{}", outcome.diagnostics);
                (
                    format!("robust[{}]", outcome.result.algorithm),
                    outcome.result.partition,
                )
            }
            Err(failure) => {
                eprintln!("{}", failure.diagnostics);
                return Err(failure.to_string());
            }
        }
    } else {
        let stage = stage_for(&args)?;
        let r = run_stage(stage.as_ref(), &hg, None, &ctx).map_err(|e| e.to_string())?;
        (r.algorithm.to_string(), r.partition)
    };

    let stats = partition.cut_stats(&hg);
    println!(
        "{label}: cut={} areas={} ratio={:.3e}",
        stats.cut_nets,
        stats.areas(),
        stats.ratio()
    );
    if args.table {
        print!("{}", CutBySize::compute(&hg, &partition));
    }
    if let Some(path) = args.output {
        let mut out =
            std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        for side in partition.sides() {
            writeln!(out, "{}", if *side == Side::Left { 0 } else { 1 })
                .map_err(|e| format!("write failed: {e}"))?;
        }
        eprintln!("partition written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["x.hgr"]).unwrap();
        assert_eq!(a.input, "x.hgr");
        assert_eq!(a.algorithm, "igmatch");
        assert_eq!(a.weighting, IgWeighting::Paper);
        assert!(!a.refine && !a.table && !a.trace && a.output.is_none());
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "in.hgr",
            "--algorithm",
            "rcut",
            "--weighting",
            "uniform",
            "--refine",
            "--table",
            "--trace",
            "--output",
            "out.part",
        ])
        .unwrap();
        assert_eq!(a.algorithm, "rcut");
        assert_eq!(a.weighting, IgWeighting::Uniform);
        assert!(a.refine && a.table && a.trace);
        assert_eq!(a.output.as_deref(), Some("out.part"));
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(parse(&[]).unwrap_err().contains("usage"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["x.hgr", "--bogus"])
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn unknown_weighting_rejected() {
        let err = parse(&["x.hgr", "--weighting", "magic"]).unwrap_err();
        assert!(err.contains("unknown weighting"), "{err}");
    }

    #[test]
    fn dangling_value_flag_rejected() {
        assert!(parse(&["x.hgr", "--output"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn fallback_selects_robust_algorithm() {
        let a = parse(&["x.hgr", "--fallback"]).unwrap();
        assert_eq!(a.algorithm, "robust");
    }

    #[test]
    fn budget_ms_parsed() {
        let a = parse(&["x.hgr", "--budget-ms", "250"]).unwrap();
        assert_eq!(a.budget_ms, Some(250));
        assert_eq!(budget_of(&a).wall_clock, Some(Duration::from_millis(250)));
    }

    #[test]
    fn budget_ms_rejects_non_numeric() {
        let err = parse(&["x.hgr", "--budget-ms", "soon"]).unwrap_err();
        assert!(err.contains("milliseconds"), "{err}");
    }

    #[test]
    fn every_engine_algorithm_resolves_to_a_stage() {
        for algo in ["igmatch", "igvote", "eig1", "rcut", "fm", "kl", "hybrid"] {
            let a = parse(&["x.hgr", "--algorithm", algo]).unwrap();
            let stage = stage_for(&a).unwrap();
            assert!(!stage.name().is_empty(), "{algo}");
        }
        let bad = parse(&["x.hgr", "--algorithm", "magic"]).unwrap();
        let err = stage_for(&bad)
            .err()
            .expect("unknown algorithm must be rejected");
        assert!(err.contains("unknown algorithm"), "{err}");
    }
}
