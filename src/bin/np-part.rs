//! `np-part` — command-line ratio-cut partitioner.
//!
//! Reads a netlist in hMETIS `.hgr` format, partitions it with the chosen
//! algorithm, prints the cut statistics and optionally writes the
//! partition (one `0`/`1` per module line, hMETIS convention).
//!
//! ```text
//! np-part INPUT.hgr [--algorithm igmatch|igvote|eig1|rcut|fm|kl|hybrid|robust]
//!                   [--refine] [--weighting paper|uniform|shared-count|size-scaled]
//!                   [--budget-ms MS] [--fallback] [--trace]
//!                   [--multilevel] [--coarsen-target N] [--max-levels N]
//!                   [--restarts N] [--threads T] [--seed S]
//!                   [--target-ratio X] [--report-json FILE]
//!                   [--k K] [--epsilon E] [--fixed FIX_FILE]
//!                   [--kway-method recursive|direct|race]
//!                   [--output PART_FILE] [--table]
//! ```
//!
//! `--multilevel` runs the [`np_multilevel`](ig_match_repro::multilevel)
//! V-cycle instead of a flat algorithm: coarsen to `--coarsen-target`
//! modules (default 3000) over at most `--max-levels` levels, partition
//! the coarsest level with the hybrid IG-Match pipeline, then project
//! and refine back up. It composes with every mode: single-run,
//! portfolio (`--restarts`, each attempt reseeding the coarsest
//! eigensolve) and k-way (`--k K`, carrying `--fixed` pins through the
//! contraction). With `--coarsen-target` at or above the module count
//! the V-cycle is bit-identical to `--algorithm hybrid`.
//!
//! `--k K` (with `K != 2`) or `--fixed FILE` switches to **k-way mode**:
//! the netlist is split into `K` blocks, each within `(1+ε)·total/K` of
//! the average area (`--epsilon E`, default 0.1), honouring the hMETIS
//! `.fix`-format pre-assignments in `FIX_FILE` (one line per module:
//! a block id, or `-1` for free). `--kway-method` picks recursive
//! bisection (default), the direct spectral embedding, or a `race` of
//! both over the portfolio pool; `--output` then writes one block id per
//! module line.
//!
//! Every algorithm is an engine [`Stage`](ig_match_repro::Stage) assembled from the CLI flags
//! and run against one shared [`RunContext`], so `--budget-ms` (a
//! wall-clock cap on the whole run) applies uniformly and `--trace`
//! streams the stage graph — including the links of the robust fallback
//! chain and the stages of the hybrid pipeline — to stderr as it
//! executes.
//!
//! `--fallback` is shorthand for `--algorithm robust`: run the resilient
//! chain that falls back from IG-Match through reseeded Lanczos, a dense
//! eigensolve and clique-model EIG1 down to plain FM, printing which
//! stage produced the answer. An exhausted budget exits with a
//! structured error.
//!
//! `--restarts N` switches to **portfolio mode** ([`np_runner`]): N
//! attempts of the chosen algorithm run concurrently over `--threads T`
//! workers (0 = one per CPU), each on its own decorrelated seed stream
//! derived from `--seed`, sharing one operator cache so the spectral
//! Laplacians are built once, and the best partition by ratio cut wins.
//! For a fixed seed the winner is identical for every thread count.
//! `--target-ratio X` stops the whole portfolio early once an attempt
//! reaches ratio `X`; `--report-json FILE` writes the per-attempt
//! outcome record.
//!
//! In **single-run mode** (no portfolio flag), `--threads T` instead
//! shards the spectral kernels — the Lanczos matvec and the net-model
//! graph builds — over T OS threads (0 = one per CPU). Results are
//! bit-identical for every thread count; the knob trades wall-clock
//! only. In portfolio mode the workers already use the requested cores,
//! so attempts keep their kernels serial.

use ig_match_repro::core::engine::run_stage;
use ig_match_repro::core::engine::stages::{
    Eig1Stage, FmStage, IgMatchStage, IgVoteStage, KlStage, RcutStage, RobustStage,
};
use ig_match_repro::core::engine::DEFAULT_SEED;
use ig_match_repro::core::kway::{
    kway_partition_ctx, KwayDirectStage, KwayMethod, KwayOptions, KwayRecursiveStage,
};
use ig_match_repro::hybrid::{hybrid_pipeline, HybridOptions};
use ig_match_repro::netlist::io::read_hgr;
use ig_match_repro::netlist::rng::derive_seed;
use ig_match_repro::netlist::stats::{CutBySize, NetlistSummary};
use ig_match_repro::netlist::{FixedModules, KwayPartition};
use ig_match_repro::runner::{
    run_kway_portfolio, run_portfolio, KwayPortfolio, Portfolio, PortfolioEvent, PortfolioOptions,
    RandomStartFmStage,
};
use ig_match_repro::sparse::{Budget, BudgetMeter};
use ig_match_repro::{
    multilevel_kway_ctx, robust_partition_ctx, Bipartition, BoxedStage, Eig1Options,
    IgMatchOptions, IgVoteOptions, IgWeighting, KlOptions, MultilevelOptions, MultilevelStage,
    RcutOptions, RobustOptions, RunContext, Side, StageEvent,
};
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Args {
    input: String,
    algorithm: String,
    weighting: IgWeighting,
    refine: bool,
    budget_ms: Option<u64>,
    trace: bool,
    output: Option<String>,
    table: bool,
    restarts: Option<usize>,
    threads: Option<usize>,
    seed: u64,
    target_ratio: Option<f64>,
    report_json: Option<String>,
    k: usize,
    epsilon: f64,
    fixed: Option<String>,
    kway_method: String,
    multilevel: bool,
    coarsen_target: Option<usize>,
    max_levels: Option<usize>,
}

impl Args {
    /// Any portfolio flag switches the run onto the `np-runner` path.
    /// `--threads` alone does not: in single-run mode it shards the
    /// spectral kernels (SpMV, graph builds) instead of running restarts.
    fn portfolio_mode(&self) -> bool {
        self.restarts.is_some() || self.target_ratio.is_some() || self.report_json.is_some()
    }

    /// A non-default block count or any pre-assignment file switches the
    /// run onto the balanced k-way path.
    fn kway_mode(&self) -> bool {
        self.k != 2 || self.fixed.is_some()
    }
}

const USAGE: &str =
    "usage: np-part INPUT.hgr [--algorithm igmatch|igvote|eig1|rcut|fm|kl|hybrid|robust] \
                     [--refine] [--weighting paper|uniform|shared-count|size-scaled] \
                     [--budget-ms MS] [--fallback] [--trace] \
                     [--multilevel] [--coarsen-target N] [--max-levels N] \
                     [--restarts N] [--threads T] [--seed S] \
                     [--target-ratio X] [--report-json FILE] \
                     [--k K] [--epsilon E] [--fixed FIX_FILE] \
                     [--kway-method recursive|direct|race] \
                     [--output FILE] [--table]";

fn parse_args<I>(args: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut input = None;
    let mut algorithm = "igmatch".to_string();
    let mut weighting = IgWeighting::Paper;
    let mut refine = false;
    let mut budget_ms = None;
    let mut trace = false;
    let mut output = None;
    let mut table = false;
    let mut restarts = None;
    let mut threads = None;
    let mut seed = DEFAULT_SEED;
    let mut target_ratio = None;
    let mut report_json = None;
    let mut k = 2usize;
    let mut epsilon = 0.1f64;
    let mut fixed = None;
    let mut kway_method = "recursive".to_string();
    let mut multilevel = false;
    let mut coarsen_target = None;
    let mut max_levels = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--algorithm" | "--algo" => {
                algorithm = iter.next().ok_or("--algorithm needs a value")?;
            }
            "--weighting" => {
                let w = iter.next().ok_or("--weighting needs a value")?;
                weighting = IgWeighting::ALL
                    .into_iter()
                    .find(|x| x.name() == w)
                    .ok_or_else(|| format!("unknown weighting '{w}'"))?;
            }
            "--refine" => refine = true,
            "--fallback" => algorithm = "robust".to_string(),
            "--budget-ms" => {
                let v = iter.next().ok_or("--budget-ms needs a value")?;
                budget_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--budget-ms expects milliseconds, got '{v}'"))?,
                );
            }
            "--trace" => trace = true,
            "--table" => table = true,
            "--output" => output = Some(iter.next().ok_or("--output needs a value")?),
            "--restarts" => {
                let v = iter.next().ok_or("--restarts needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--restarts expects a count, got '{v}'"))?;
                if n == 0 {
                    return Err("--restarts must be at least 1".into());
                }
                restarts = Some(n);
            }
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--threads expects a count (0 = auto), got '{v}'"))?,
                );
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an unsigned integer, got '{v}'"))?;
            }
            "--target-ratio" => {
                let v = iter.next().ok_or("--target-ratio needs a value")?;
                let x = v
                    .parse::<f64>()
                    .map_err(|_| format!("--target-ratio expects a number, got '{v}'"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(format!("--target-ratio must be finite and >= 0, got '{v}'"));
                }
                target_ratio = Some(x);
            }
            "--report-json" => {
                report_json = Some(iter.next().ok_or("--report-json needs a value")?);
            }
            "--k" => {
                let v = iter.next().ok_or("--k needs a value")?;
                k = v
                    .parse::<usize>()
                    .map_err(|_| format!("--k expects a block count, got '{v}'"))?;
                if k == 0 {
                    return Err("--k must be at least 1".into());
                }
            }
            "--epsilon" => {
                let v = iter.next().ok_or("--epsilon needs a value")?;
                epsilon = v
                    .parse::<f64>()
                    .map_err(|_| format!("--epsilon expects a number, got '{v}'"))?;
                if !epsilon.is_finite() || epsilon < 0.0 {
                    return Err(format!("--epsilon must be finite and >= 0, got '{v}'"));
                }
            }
            "--fixed" => {
                fixed = Some(iter.next().ok_or("--fixed needs a value")?);
            }
            "--kway-method" => {
                let v = iter.next().ok_or("--kway-method needs a value")?;
                if !["recursive", "direct", "race"].contains(&v.as_str()) {
                    return Err(format!("unknown k-way method '{v}'\n{USAGE}"));
                }
                kway_method = v;
            }
            "--multilevel" => multilevel = true,
            "--coarsen-target" => {
                let v = iter.next().ok_or("--coarsen-target needs a value")?;
                let t = v
                    .parse::<usize>()
                    .map_err(|_| format!("--coarsen-target expects a module count, got '{v}'"))?;
                if t == 0 {
                    return Err("--coarsen-target must be at least 1".into());
                }
                coarsen_target = Some(t);
            }
            "--max-levels" => {
                let v = iter.next().ok_or("--max-levels needs a value")?;
                max_levels = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--max-levels expects a count, got '{v}'"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Args {
        input: input.ok_or(USAGE)?,
        algorithm,
        weighting,
        refine,
        budget_ms,
        trace,
        output,
        table,
        restarts,
        threads,
        seed,
        target_ratio,
        report_json,
        k,
        epsilon,
        fixed,
        kway_method,
        multilevel,
        coarsen_target,
        max_levels,
    })
}

/// Resolves `--budget-ms` into a [`Budget`]; `None` means unlimited.
fn budget_of(args: &Args) -> Budget {
    match args.budget_ms {
        Some(ms) => Budget::UNLIMITED.with_wall_clock(Duration::from_millis(ms)),
        None => Budget::UNLIMITED,
    }
}

/// Builds the [`MultilevelOptions`] the CLI flags describe:
/// `--coarsen-target`/`--max-levels` override the defaults and the
/// coarsest-level pipeline inherits `--weighting`/`--refine`.
fn multilevel_options_for(args: &Args) -> MultilevelOptions {
    let base = MultilevelOptions::default();
    MultilevelOptions {
        coarsen_target: args.coarsen_target.unwrap_or(base.coarsen_target),
        max_levels: args.max_levels.unwrap_or(base.max_levels),
        ig_match: IgMatchOptions {
            weighting: args.weighting,
            refine_free_modules: args.refine,
            ..Default::default()
        },
        ..base
    }
}

/// Builds the engine stage the CLI flags describe. `robust` is handled
/// separately (its chain reports structured diagnostics), and
/// `--multilevel` takes precedence over `--algorithm` (the V-cycle runs
/// the hybrid pipeline on the coarsest level itself).
fn stage_for(args: &Args) -> Result<BoxedStage, String> {
    if args.multilevel {
        return Ok(Box::new(MultilevelStage::new(multilevel_options_for(args))));
    }
    let ig_match = IgMatchOptions {
        weighting: args.weighting,
        refine_free_modules: args.refine,
        ..Default::default()
    };
    Ok(match args.algorithm.as_str() {
        "igmatch" => Box::new(IgMatchStage::new(ig_match)),
        "igvote" => Box::new(IgVoteStage::new(IgVoteOptions {
            weighting: args.weighting,
            ..Default::default()
        })),
        "eig1" => Box::new(Eig1Stage::default()),
        "rcut" => Box::new(RcutStage::default()),
        "fm" => Box::new(FmStage::default()),
        "kl" => Box::new(KlStage::default()),
        "hybrid" => Box::new(hybrid_pipeline(&HybridOptions {
            ig_match,
            ..Default::default()
        })),
        other => return Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    })
}

/// Builds the stage portfolio attempt `idx` runs: the CLI's algorithm
/// with every internal seed moved onto the attempt's `derive_seed`
/// stream, and internal restart loops collapsed to a single run (the
/// portfolio *is* the restart loop).
fn attempt_stage_for(args: &Args, idx: usize) -> Result<BoxedStage, String> {
    let stream = derive_seed(args.seed, idx as u64);
    if args.multilevel {
        // the coarsest-level eigensolve is the V-cycle's only stochastic
        // point, so reseeding it is what diversifies the attempts
        let mut opts = multilevel_options_for(args);
        opts.ig_match.lanczos.seed = stream;
        return Ok(Box::new(MultilevelStage::new(opts)));
    }
    let ig_match = {
        let mut o = IgMatchOptions {
            weighting: args.weighting,
            refine_free_modules: args.refine,
            ..Default::default()
        };
        o.lanczos.seed = stream;
        o
    };
    Ok(match args.algorithm.as_str() {
        "igmatch" => Box::new(IgMatchStage::new(ig_match)),
        "igvote" => {
            let mut o = IgVoteOptions {
                weighting: args.weighting,
                ..Default::default()
            };
            o.lanczos.seed = stream;
            Box::new(IgVoteStage::new(o))
        }
        "eig1" => {
            let mut o = Eig1Options::default();
            o.lanczos.seed = stream;
            Box::new(Eig1Stage { opts: o })
        }
        "rcut" => Box::new(RcutStage {
            opts: RcutOptions {
                runs: 1,
                seed: stream,
                ..Default::default()
            },
        }),
        // FM draws its random start from the attempt context's seed
        "fm" => Box::new(RandomStartFmStage::default()),
        "kl" => Box::new(KlStage {
            opts: KlOptions {
                runs: 1,
                seed: stream,
                ..Default::default()
            },
        }),
        "hybrid" => Box::new(hybrid_pipeline(&HybridOptions {
            ig_match,
            ..Default::default()
        })),
        "robust" => Box::new(RobustStage {
            opts: RobustOptions {
                ig_match,
                ..Default::default()
            },
        }),
        other => return Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    })
}

/// Portfolio mode: `--restarts` attempts of the chosen algorithm over
/// the runner's worker pool, reduced to the best ratio cut.
fn run_portfolio_mode(
    args: &Args,
    hg: &ig_match_repro::Hypergraph,
    meter: &BudgetMeter,
) -> Result<(String, Bipartition), String> {
    use ig_match_repro::runner::AttemptStatus;

    let restarts = args.restarts.unwrap_or(1);
    let family = if args.multilevel {
        "multilevel"
    } else {
        args.algorithm.as_str()
    };
    let mut portfolio = Portfolio::new();
    for i in 0..restarts {
        portfolio = portfolio.attempt_boxed(format!("{family}#{i}"), attempt_stage_for(args, i)?);
    }
    let opts = PortfolioOptions {
        threads: args.threads.unwrap_or(0),
        seed: args.seed,
        target_ratio: args.target_ratio,
    };
    let trace = args.trace;
    // same policy as the single-run sink, with an `[attempt:label]` tag
    // so interleaved streams from concurrent attempts stay attributable
    let sink = move |e: &PortfolioEvent<'_>| match e.event {
        StageEvent::Detail { stage, message } => {
            eprintln!("[{}:{}] {stage}: {message}", e.attempt, e.label)
        }
        StageEvent::Started { stage } if trace => {
            eprintln!("[{}:{}] -> {stage}", e.attempt, e.label)
        }
        StageEvent::Finished { stage, outcome } if trace => match outcome {
            Ok(r) => eprintln!(
                "[{}:{}] <- {stage}: ratio {:.3e}",
                e.attempt,
                e.label,
                r.ratio()
            ),
            Err(err) => eprintln!("[{}:{}] <- {stage}: failed: {err}", e.attempt, e.label),
        },
        _ => {}
    };
    let outcome = run_portfolio(hg, &portfolio, &opts, meter, Some(&sink));
    {
        let report = match &outcome {
            Ok(o) => &o.report,
            Err(e) => &e.report,
        };
        if let Some(path) = &args.report_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("portfolio report written to {path}");
        }
    }
    match outcome {
        Ok(out) => {
            let completed = out
                .report
                .attempts
                .iter()
                .filter(|a| matches!(a.status, AttemptStatus::Won | AttemptStatus::Completed))
                .count();
            eprintln!(
                "portfolio: attempt {} ('{}') wins, {completed}/{restarts} completed, {} thread(s), {:.1} ms",
                out.winner,
                out.report.attempts[out.winner].label,
                out.report.threads,
                out.report.wall.as_secs_f64() * 1e3
            );
            Ok((
                format!("best-of-{restarts}[{}]", out.best.algorithm),
                out.best.partition,
            ))
        }
        Err(err) => Err(err.to_string()),
    }
}

/// Builds the [`KwayOptions`] the CLI flags describe, loading the
/// `.fix` pre-assignment file when given.
fn kway_options_for(args: &Args, num_modules: usize) -> Result<KwayOptions, String> {
    let fixed = match &args.fixed {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let f = FixedModules::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            if f.len() != num_modules {
                return Err(format!(
                    "{path}: {} fixed-module lines for {num_modules} modules",
                    f.len()
                ));
            }
            Some(f)
        }
        None => None,
    };
    Ok(KwayOptions {
        k: args.k,
        epsilon: args.epsilon,
        fixed,
        ig_match: IgMatchOptions {
            weighting: args.weighting,
            refine_free_modules: args.refine,
            ..Default::default()
        },
        seed: args.seed,
        ..Default::default()
    })
}

/// K-way mode: partition into `--k` balanced blocks and print/write the
/// block assignment.
fn run_kway_mode(
    args: &Args,
    hg: &ig_match_repro::Hypergraph,
    meter: &BudgetMeter,
) -> Result<(), String> {
    let opts = kway_options_for(args, hg.num_modules())?;
    let (label, result): (String, _) = if args.multilevel {
        let ctx = RunContext::with_meter(meter)
            .with_seed(args.seed)
            .with_threads(args.threads.unwrap_or(1));
        let mopts = multilevel_options_for(args);
        let out = multilevel_kway_ctx(hg, &opts, &mopts, &ctx).map_err(|e| e.to_string())?;
        eprintln!(
            "multilevel-kway: {} levels, coarsest {} modules, coarse cut {}{}",
            out.levels,
            out.coarsest_modules,
            out.coarse_cut,
            if out.budget_degraded {
                " (budget degraded to projection)"
            } else {
                ""
            }
        );
        (out.result.algorithm.to_string(), out.result)
    } else if args.kway_method == "race" || args.portfolio_mode() {
        let portfolio = match args.kway_method.as_str() {
            "race" => KwayPortfolio::methods(&opts, args.restarts.unwrap_or(2)),
            "direct" => {
                let mut p = KwayPortfolio::new();
                for i in 0..args.restarts.unwrap_or(1) {
                    let mut o = opts.clone();
                    o.seed = derive_seed(args.seed, i as u64);
                    p = p.attempt(format!("direct#{i}"), KwayDirectStage::new(o));
                }
                p
            }
            _ => KwayPortfolio::new().attempt("recursive", KwayRecursiveStage::new(opts.clone())),
        };
        let popts = PortfolioOptions {
            threads: args.threads.unwrap_or(0),
            seed: args.seed,
            target_ratio: None,
        };
        let out = run_kway_portfolio(hg, &portfolio, &popts, meter).map_err(|e| e.to_string())?;
        for a in &out.attempts {
            match (&a.ratio, &a.error) {
                (Some(r), _) => eprintln!("  {}: kratio {r:.3e}", a.label),
                (None, Some(e)) => eprintln!("  {}: failed: {e}", a.label),
                (None, None) => eprintln!("  {}: skipped", a.label),
            }
        }
        (format!("kway-race[{}]", out.best.algorithm), out.best)
    } else {
        let method = if args.kway_method == "direct" {
            KwayMethod::Direct
        } else {
            KwayMethod::Recursive
        };
        let ctx = RunContext::with_meter(meter)
            .with_seed(args.seed)
            .with_threads(args.threads.unwrap_or(1));
        let out = kway_partition_ctx(hg, &opts, method, &ctx).map_err(|e| e.to_string())?;
        (out.algorithm.to_string(), out)
    };
    println!("{label}: {}", result.stats);
    if let Some(path) = &args.output {
        write_kway_partition(path, &result.partition)?;
        eprintln!("partition written to {path}");
    }
    Ok(())
}

fn write_kway_partition(path: &str, partition: &KwayPartition) -> Result<(), String> {
    let mut out = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    for &b in partition.labels() {
        writeln!(out, "{b}").map_err(|e| format!("write failed: {e}"))?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    let file =
        std::fs::File::open(&args.input).map_err(|e| format!("cannot open {}: {e}", args.input))?;
    let hg = read_hgr(BufReader::new(file)).map_err(|e| format!("parse failed: {e}"))?;
    eprintln!("{}: {}", args.input, NetlistSummary::of(&hg));

    let budget = budget_of(&args);
    let meter = BudgetMeter::new(&budget);
    if args.kway_mode() {
        return run_kway_mode(&args, &hg, &meter);
    }
    let trace = args.trace;
    // details (e.g. IG-Match's matching bound) always go to stderr; the
    // per-stage start/finish stream only with --trace
    let sink = move |e: &StageEvent<'_>| match e {
        StageEvent::Detail { stage, message } => eprintln!("{stage}: {message}"),
        StageEvent::Started { stage } if trace => eprintln!("-> {stage}"),
        StageEvent::Finished { stage, outcome } if trace => match outcome {
            Ok(r) => eprintln!("<- {stage}: ratio {:.3e}", r.ratio()),
            Err(e) => eprintln!("<- {stage}: failed: {e}"),
        },
        _ => {}
    };
    let ctx = RunContext::with_meter(&meter)
        .with_seed(args.seed)
        .with_threads(args.threads.unwrap_or(1))
        .with_events(&sink);

    let (label, partition): (String, Bipartition) = if args.portfolio_mode() {
        run_portfolio_mode(&args, &hg, &meter)?
    } else if args.algorithm == "robust" {
        let opts = RobustOptions {
            ig_match: IgMatchOptions {
                weighting: args.weighting,
                refine_free_modules: args.refine,
                ..Default::default()
            },
            ..Default::default()
        };
        match robust_partition_ctx(&hg, &opts, &ctx) {
            Ok(outcome) => {
                eprintln!("{}", outcome.diagnostics);
                (
                    format!("robust[{}]", outcome.result.algorithm),
                    outcome.result.partition,
                )
            }
            Err(failure) => {
                eprintln!("{}", failure.diagnostics);
                return Err(failure.to_string());
            }
        }
    } else {
        let stage = stage_for(&args)?;
        let r = run_stage(stage.as_ref(), &hg, None, &ctx).map_err(|e| e.to_string())?;
        (r.algorithm.to_string(), r.partition)
    };

    let stats = partition.cut_stats(&hg);
    println!(
        "{label}: cut={} areas={} ratio={:.3e}",
        stats.cut_nets,
        stats.areas(),
        stats.ratio()
    );
    if args.table {
        print!("{}", CutBySize::compute(&hg, &partition));
    }
    if let Some(path) = args.output {
        let mut out =
            std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        for side in partition.sides() {
            writeln!(out, "{}", if *side == Side::Left { 0 } else { 1 })
                .map_err(|e| format!("write failed: {e}"))?;
        }
        eprintln!("partition written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["x.hgr"]).unwrap();
        assert_eq!(a.input, "x.hgr");
        assert_eq!(a.algorithm, "igmatch");
        assert_eq!(a.weighting, IgWeighting::Paper);
        assert!(!a.refine && !a.table && !a.trace && a.output.is_none());
        assert_eq!(a.seed, DEFAULT_SEED);
        assert!(!a.portfolio_mode());
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "in.hgr",
            "--algorithm",
            "rcut",
            "--weighting",
            "uniform",
            "--refine",
            "--table",
            "--trace",
            "--output",
            "out.part",
        ])
        .unwrap();
        assert_eq!(a.algorithm, "rcut");
        assert_eq!(a.weighting, IgWeighting::Uniform);
        assert!(a.refine && a.table && a.trace);
        assert_eq!(a.output.as_deref(), Some("out.part"));
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(parse(&[]).unwrap_err().contains("usage"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["x.hgr", "--bogus"])
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn unknown_weighting_rejected() {
        let err = parse(&["x.hgr", "--weighting", "magic"]).unwrap_err();
        assert!(err.contains("unknown weighting"), "{err}");
    }

    #[test]
    fn dangling_value_flag_rejected() {
        assert!(parse(&["x.hgr", "--output"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn fallback_selects_robust_algorithm() {
        let a = parse(&["x.hgr", "--fallback"]).unwrap();
        assert_eq!(a.algorithm, "robust");
    }

    #[test]
    fn budget_ms_parsed() {
        let a = parse(&["x.hgr", "--budget-ms", "250"]).unwrap();
        assert_eq!(a.budget_ms, Some(250));
        assert_eq!(budget_of(&a).wall_clock, Some(Duration::from_millis(250)));
    }

    #[test]
    fn budget_ms_rejects_non_numeric() {
        let err = parse(&["x.hgr", "--budget-ms", "soon"]).unwrap_err();
        assert!(err.contains("milliseconds"), "{err}");
    }

    #[test]
    fn every_engine_algorithm_resolves_to_a_stage() {
        for algo in ["igmatch", "igvote", "eig1", "rcut", "fm", "kl", "hybrid"] {
            let a = parse(&["x.hgr", "--algorithm", algo]).unwrap();
            let stage = stage_for(&a).unwrap();
            assert!(!stage.name().is_empty(), "{algo}");
        }
        let bad = parse(&["x.hgr", "--algorithm", "magic"]).unwrap();
        let err = stage_for(&bad)
            .err()
            .expect("unknown algorithm must be rejected");
        assert!(err.contains("unknown algorithm"), "{err}");
    }

    #[test]
    fn portfolio_flags_parsed() {
        let a = parse(&[
            "x.hgr",
            "--algo",
            "fm",
            "--restarts",
            "16",
            "--threads",
            "8",
            "--seed",
            "42",
            "--target-ratio",
            "0.125",
            "--report-json",
            "report.json",
        ])
        .unwrap();
        assert_eq!(a.algorithm, "fm");
        assert_eq!(a.restarts, Some(16));
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.seed, 42);
        assert_eq!(a.target_ratio, Some(0.125));
        assert_eq!(a.report_json.as_deref(), Some("report.json"));
        assert!(a.portfolio_mode());
    }

    #[test]
    fn any_portfolio_flag_enables_portfolio_mode() {
        for flags in [
            &["x.hgr", "--restarts", "4"][..],
            &["x.hgr", "--target-ratio", "0.5"][..],
            &["x.hgr", "--report-json", "r.json"][..],
        ] {
            assert!(parse(flags).unwrap().portfolio_mode(), "{flags:?}");
        }
    }

    #[test]
    fn threads_alone_stays_single_run() {
        // --threads without a portfolio flag shards the spectral kernels
        // of one run; it must not silently switch to restart mode
        let a = parse(&["x.hgr", "--threads", "2"]).unwrap();
        assert!(!a.portfolio_mode());
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn zero_restarts_rejected() {
        let err = parse(&["x.hgr", "--restarts", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn bad_target_ratio_rejected() {
        assert!(parse(&["x.hgr", "--target-ratio", "-1"]).is_err());
        assert!(parse(&["x.hgr", "--target-ratio", "inf"]).is_err());
        assert!(parse(&["x.hgr", "--target-ratio", "soon"]).is_err());
    }

    #[test]
    fn kway_flags_parsed() {
        let a = parse(&[
            "x.hgr",
            "--k",
            "4",
            "--epsilon",
            "0.25",
            "--fixed",
            "pins.fix",
            "--kway-method",
            "direct",
        ])
        .unwrap();
        assert_eq!(a.k, 4);
        assert_eq!(a.epsilon, 0.25);
        assert_eq!(a.fixed.as_deref(), Some("pins.fix"));
        assert_eq!(a.kway_method, "direct");
        assert!(a.kway_mode());
    }

    #[test]
    fn default_k_is_bipartition_mode() {
        let a = parse(&["x.hgr"]).unwrap();
        assert_eq!(a.k, 2);
        assert!(!a.kway_mode());
        // a fixed file forces the k-way path even at k = 2
        let b = parse(&["x.hgr", "--fixed", "p.fix"]).unwrap();
        assert!(b.kway_mode());
    }

    #[test]
    fn bad_kway_flags_rejected() {
        assert!(parse(&["x.hgr", "--k", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["x.hgr", "--epsilon", "-0.1"]).is_err());
        assert!(parse(&["x.hgr", "--epsilon", "nan"]).is_err());
        assert!(parse(&["x.hgr", "--kway-method", "magic"])
            .unwrap_err()
            .contains("unknown k-way method"));
    }

    #[test]
    fn multilevel_flags_parsed() {
        let a = parse(&[
            "x.hgr",
            "--multilevel",
            "--coarsen-target",
            "500",
            "--max-levels",
            "6",
        ])
        .unwrap();
        assert!(a.multilevel);
        assert_eq!(a.coarsen_target, Some(500));
        assert_eq!(a.max_levels, Some(6));
        let o = multilevel_options_for(&a);
        assert_eq!(o.coarsen_target, 500);
        assert_eq!(o.max_levels, 6);
        // defaults flow through when the knobs are omitted
        let b = parse(&["x.hgr", "--multilevel"]).unwrap();
        let d = MultilevelOptions::default();
        let o = multilevel_options_for(&b);
        assert_eq!(o.coarsen_target, d.coarsen_target);
        assert_eq!(o.max_levels, d.max_levels);
    }

    #[test]
    fn bad_multilevel_flags_rejected() {
        assert!(parse(&["x.hgr", "--coarsen-target", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["x.hgr", "--coarsen-target", "many"]).is_err());
        assert!(parse(&["x.hgr", "--max-levels", "deep"]).is_err());
    }

    #[test]
    fn multilevel_overrides_the_algorithm_stage() {
        let a = parse(&["x.hgr", "--multilevel", "--algorithm", "rcut"]).unwrap();
        assert_eq!(stage_for(&a).unwrap().name(), "multilevel");
        assert_eq!(attempt_stage_for(&a, 0).unwrap().name(), "multilevel");
        // --weighting/--refine reach the coarsest-level pipeline
        let b = parse(&[
            "x.hgr",
            "--multilevel",
            "--weighting",
            "uniform",
            "--refine",
        ])
        .unwrap();
        let o = multilevel_options_for(&b);
        assert_eq!(o.ig_match.weighting, IgWeighting::Uniform);
        assert!(o.ig_match.refine_free_modules);
    }

    #[test]
    fn every_algorithm_resolves_to_an_attempt_stage() {
        for algo in [
            "igmatch", "igvote", "eig1", "rcut", "fm", "kl", "hybrid", "robust",
        ] {
            let a = parse(&["x.hgr", "--algorithm", algo, "--restarts", "2"]).unwrap();
            let s0 = attempt_stage_for(&a, 0).unwrap();
            let s1 = attempt_stage_for(&a, 1).unwrap();
            assert!(!s0.name().is_empty(), "{algo}");
            assert_eq!(s0.name(), s1.name(), "{algo}");
        }
        let bad = parse(&["x.hgr", "--algorithm", "magic", "--restarts", "2"]).unwrap();
        assert!(attempt_stage_for(&bad, 0).is_err());
    }
}
