//! `np-gen` — emit synthetic benchmark netlists in hMETIS `.hgr` format.
//!
//! ```text
//! np-gen SUITE_NAME [OUTPUT.hgr]        # e.g. np-gen Prim2 prim2.hgr
//! np-gen --random MODULES NETS SEED [OUTPUT.hgr]
//! np-gen --list
//! ```
//!
//! Without an output path the netlist is written to stdout.

use ig_match_repro::netlist::generate::{generate, mcnc_benchmark, mcnc_specs, GeneratorConfig};
use ig_match_repro::netlist::io::write_hgr;
use ig_match_repro::netlist::stats::NetlistSummary;
use ig_match_repro::netlist::Hypergraph;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str =
    "usage: np-gen SUITE_NAME [OUT.hgr] | np-gen --random MODULES NETS SEED [OUT.hgr] | np-gen --list";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (hg, name, out_path): (Hypergraph, String, Option<String>) =
        match args.first().map(String::as_str) {
            Some("--list") => {
                let mut listing = String::new();
                for spec in mcnc_specs() {
                    listing.push_str(&format!(
                        "{:<8} {:>6} modules {:>6} nets\n",
                        spec.name, spec.config.modules, spec.config.nets
                    ));
                }
                // ignore broken pipes (e.g. `np-gen --list | head`)
                let _ = std::io::stdout().write_all(listing.as_bytes());
                return Ok(());
            }
            Some("--random") => {
                let parse = |i: usize, what: &str| -> Result<u64, String> {
                    args.get(i)
                        .ok_or(format!("missing {what}\n{USAGE}"))?
                        .parse::<u64>()
                        .map_err(|e| format!("bad {what}: {e}"))
                };
                let modules = parse(1, "MODULES")? as usize;
                let nets = parse(2, "NETS")? as usize;
                let seed = parse(3, "SEED")?;
                (
                    generate(&GeneratorConfig::new(modules, nets, seed)),
                    format!("random-{modules}x{nets}@{seed}"),
                    args.get(4).cloned(),
                )
            }
            Some(name) if !name.starts_with('-') => {
                let b = mcnc_benchmark(name)
                    .ok_or_else(|| format!("unknown benchmark '{name}' (np-gen --list)"))?;
                (b.hypergraph, b.name, args.get(1).cloned())
            }
            _ => return Err(USAGE.into()),
        };
    eprintln!("{name}: {}", NetlistSummary::of(&hg));
    match out_path {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_hgr(&hg, std::io::BufWriter::new(file))
                .map_err(|e| format!("write failed: {e}"))?;
            eprintln!("written to {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_hgr(&hg, &mut lock).map_err(|e| format!("write failed: {e}"))?;
            lock.flush().map_err(|e| format!("flush failed: {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
