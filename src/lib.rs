//! Reproduction of Cong, Hagen and Kahng, *Net Partitions Yield Better
//! Module Partitions* (DAC 1992).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`netlist`] — hypergraphs, bipartitions, the ratio-cut metric,
//!   benchmark generation and `.hgr` I/O (`np-netlist`);
//! * [`sparse`] — CSR matrices and Laplacian operators (`np-sparse`);
//! * [`eigen`] — Lanczos/Jacobi eigensolvers for Fiedler vectors
//!   (`np-eigen`);
//! * [`core`] — the paper's algorithms: net models, EIG1, IG-Vote and
//!   IG-Match, plus the composable stage engine ([`core::engine`])
//!   every partitioner plugs into (`np-core`);
//! * [`baselines`] — FM, the RCut1.0 stand-in and KL (`np-baselines`);
//! * [`multilevel`] — the coarsen/partition/uncoarsen V-cycle for
//!   instances too large for the flat spectral pipeline
//!   (`np-multilevel`);
//! * [`runner`] — the parallel multi-start portfolio executor with
//!   deterministic best-of-N reduction (`np-runner`).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Example
//!
//! ```
//! use ig_match_repro::{ig_match, IgMatchOptions};
//! use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
//!
//! let hg = generate(&GeneratorConfig::new(120, 130, 7));
//! let out = ig_match(&hg, &IgMatchOptions::default())?;
//! assert!(out.result.ratio().is_finite());
//! # Ok::<(), ig_match_repro::core::PartitionError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hybrid;

pub use np_baselines as baselines;
pub use np_core as core;
pub use np_eigen as eigen;
pub use np_multilevel as multilevel;
pub use np_netlist as netlist;
pub use np_runner as runner;
pub use np_sparse as sparse;

pub use np_baselines::{
    fm_bisect, fm_bisect_metered, kl_bisect, kl_bisect_metered, rcut, rcut_metered, FmOptions,
    KlOptions, RcutOptions,
};
pub use np_core::{
    eig1, eig1_ctx, ig_match, ig_match_ctx, ig_vote, ig_vote_ctx, robust_partition,
    robust_partition_ctx, BoxedStage, Diagnostics, Eig1Options, EventSink, FallbackChain,
    FallbackStage, IgMatchOptions, IgMatchOutcome, IgVoteOptions, IgWeighting, PartitionError,
    PartitionResult, Partitioner, Pipeline, RobustFailure, RobustOptions, RobustOutcome,
    RunContext, Stage, StageEvent,
};
pub use np_multilevel::{
    multilevel as multilevel_partition, multilevel_ctx, multilevel_kway_ctx, MultilevelOptions,
    MultilevelOutcome, MultilevelStage,
};
pub use np_netlist::{Bipartition, CutStats, Hypergraph, HypergraphBuilder, ModuleId, NetId, Side};
pub use np_runner::{
    run_portfolio, run_portfolio_scored, Portfolio, PortfolioOptions, PortfolioOutcome,
    PortfolioReport,
};
pub use np_sparse::{Budget, BudgetExceeded, BudgetMeter};
