//! Hybrid pipelines combining the spectral partitioners with iterative
//! post-improvement — the §5 suggestion that "the ratio cuts so obtained
//! may optionally be improved by using standard iterative techniques".

use np_core::engine::stages::{IgMatchStage, RatioRefineStage};
use np_core::engine::{Pipeline, RunContext, Stage};
use np_core::{IgMatchOptions, PartitionError, PartitionResult};
use np_netlist::Hypergraph;
use np_sparse::{Budget, BudgetMeter};

/// Options for [`ig_match_refined`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridOptions {
    /// Options for the spectral IG-Match stage.
    pub ig_match: IgMatchOptions,
    /// Upper bound on ratio-objective FM passes in the refinement stage.
    pub max_refine_passes: usize,
    /// Cooperative resource budget covering both pipeline stages: the
    /// eigensolve and split sweep check it inside IG-Match, and each
    /// refinement pass charges one unit. Defaults to
    /// [`Budget::UNLIMITED`].
    pub budget: Budget,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            ig_match: IgMatchOptions::default(),
            max_refine_passes: 20,
            budget: Budget::UNLIMITED,
        }
    }
}

/// Runs IG-Match, then polishes the result with ratio-objective
/// Fiduccia–Mattheyses shifting passes. The refinement can only improve
/// the ratio cut, so the result is never worse than plain IG-Match — and
/// the pipeline stays fully deterministic (no random restarts anywhere).
///
/// Both stages share the single [`HybridOptions::budget`]; a budget that
/// trips during refinement aborts the whole run rather than returning the
/// unrefined partition, so callers see budget exhaustion uniformly (use
/// [`np_core::robust_partition`] when a best-effort answer is wanted).
///
/// # Errors
///
/// Propagates IG-Match failures
/// ([`PartitionError::TooSmall`] / [`Eigen`](PartitionError::Eigen) /
/// [`Degenerate`](PartitionError::Degenerate)) and surfaces budget
/// exhaustion from either stage as [`PartitionError::Budget`].
///
/// # Example
///
/// ```
/// use ig_match_repro::hybrid::{ig_match_refined, HybridOptions};
/// use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
/// use ig_match_repro::{ig_match, IgMatchOptions};
///
/// let hg = generate(&GeneratorConfig::new(150, 160, 5));
/// let plain = ig_match(&hg, &IgMatchOptions::default())?;
/// let hybrid = ig_match_refined(&hg, &HybridOptions::default())?;
/// assert!(hybrid.ratio() <= plain.result.ratio() + 1e-12);
/// # Ok::<(), ig_match_repro::PartitionError>(())
/// ```
pub fn ig_match_refined(
    hg: &Hypergraph,
    opts: &HybridOptions,
) -> Result<PartitionResult, PartitionError> {
    let meter = BudgetMeter::new(&opts.budget);
    ig_match_refined_ctx(hg, opts, &RunContext::with_meter(&meter))
}

/// [`ig_match_refined`] against an execution context — the single
/// implementation behind every entry point. The context's meter governs
/// both pipeline stages; [`HybridOptions::budget`] is *not* consulted
/// here (the plain entry point builds its context from it). An event
/// sink on the context sees both stages as `Started`/`Finished` events.
///
/// # Errors
///
/// Same as [`ig_match_refined`].
pub fn ig_match_refined_ctx(
    hg: &Hypergraph,
    opts: &HybridOptions,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    hybrid_pipeline(opts).run(hg, None, ctx)
}

/// The hybrid flow as declarative engine data: an IG-Match producer
/// feeding a ratio-refinement transformer. Exposed so callers can extend
/// the pipeline with further stages or embed it in a
/// [`FallbackChain`](np_core::engine::FallbackChain).
pub fn hybrid_pipeline(opts: &HybridOptions) -> Pipeline {
    Pipeline::named("IG-Match+FM")
        .then(IgMatchStage::new(opts.ig_match))
        .then(RatioRefineStage::new(opts.max_refine_passes, "IG-Match+FM"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_core::ig_match;
    use np_netlist::generate::{generate, GeneratorConfig};
    use std::time::Duration;

    #[test]
    fn hybrid_never_worse_than_plain() {
        let hg = generate(&GeneratorConfig::new(220, 240, 9).with_satellite(0.1, 4));
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let hybrid = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        assert!(hybrid.ratio() <= plain.result.ratio() + 1e-12);
        assert_eq!(hybrid.stats, hybrid.partition.cut_stats(&hg));
        assert_eq!(hybrid.algorithm, "IG-Match+FM");
    }

    #[test]
    fn hybrid_deterministic() {
        let hg = generate(&GeneratorConfig::new(180, 190, 2));
        let a = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        let b = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn zero_refine_passes_equals_plain() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let hybrid = ig_match_refined(
            &hg,
            &HybridOptions {
                max_refine_passes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(hybrid.partition, plain.result.partition);
    }

    #[test]
    fn exhausted_budget_surfaces_as_budget_error() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let err = ig_match_refined(
            &hg,
            &HybridOptions {
                budget: Budget::UNLIMITED.with_wall_clock(Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::Budget(_)), "{err}");
    }

    #[test]
    fn pipeline_form_matches_function_form() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let via_fn = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        let via_pipeline = hybrid_pipeline(&HybridOptions::default())
            .run(&hg, None, &RunContext::unlimited())
            .unwrap();
        assert_eq!(via_fn.partition, via_pipeline.partition);
        assert_eq!(via_pipeline.algorithm, "IG-Match+FM");
    }

    #[test]
    fn generous_budget_matches_unlimited() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let unlimited = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        let budgeted = ig_match_refined(
            &hg,
            &HybridOptions {
                budget: Budget::UNLIMITED.with_wall_clock(Duration::from_secs(600)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(unlimited.partition, budgeted.partition);
    }
}
