//! Hybrid pipelines combining the spectral partitioners with iterative
//! post-improvement — the §5 suggestion that "the ratio cuts so obtained
//! may optionally be improved by using standard iterative techniques".

use np_baselines::rcut::refine_ratio_cut_metered;
use np_core::{ig_match_metered, IgMatchOptions, PartitionError, PartitionResult};
use np_netlist::Hypergraph;
use np_sparse::{Budget, BudgetMeter};

/// Options for [`ig_match_refined`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridOptions {
    /// Options for the spectral IG-Match stage.
    pub ig_match: IgMatchOptions,
    /// Upper bound on ratio-objective FM passes in the refinement stage.
    pub max_refine_passes: usize,
    /// Cooperative resource budget covering both pipeline stages: the
    /// eigensolve and split sweep check it inside IG-Match, and each
    /// refinement pass charges one unit. Defaults to
    /// [`Budget::UNLIMITED`].
    pub budget: Budget,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            ig_match: IgMatchOptions::default(),
            max_refine_passes: 20,
            budget: Budget::UNLIMITED,
        }
    }
}

/// Runs IG-Match, then polishes the result with ratio-objective
/// Fiduccia–Mattheyses shifting passes. The refinement can only improve
/// the ratio cut, so the result is never worse than plain IG-Match — and
/// the pipeline stays fully deterministic (no random restarts anywhere).
///
/// Both stages share the single [`HybridOptions::budget`]; a budget that
/// trips during refinement aborts the whole run rather than returning the
/// unrefined partition, so callers see budget exhaustion uniformly (use
/// [`np_core::robust_partition`] when a best-effort answer is wanted).
///
/// # Errors
///
/// Propagates IG-Match failures
/// ([`PartitionError::TooSmall`] / [`Eigen`](PartitionError::Eigen) /
/// [`Degenerate`](PartitionError::Degenerate)) and surfaces budget
/// exhaustion from either stage as [`PartitionError::Budget`].
///
/// # Example
///
/// ```
/// use ig_match_repro::hybrid::{ig_match_refined, HybridOptions};
/// use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
/// use ig_match_repro::{ig_match, IgMatchOptions};
///
/// let hg = generate(&GeneratorConfig::new(150, 160, 5));
/// let plain = ig_match(&hg, &IgMatchOptions::default())?;
/// let hybrid = ig_match_refined(&hg, &HybridOptions::default())?;
/// assert!(hybrid.ratio() <= plain.result.ratio() + 1e-12);
/// # Ok::<(), ig_match_repro::PartitionError>(())
/// ```
pub fn ig_match_refined(
    hg: &Hypergraph,
    opts: &HybridOptions,
) -> Result<PartitionResult, PartitionError> {
    let meter = BudgetMeter::new(&opts.budget);
    let out = ig_match_metered(hg, &opts.ig_match, &meter)?;
    let (partition, stats) =
        refine_ratio_cut_metered(hg, &out.result.partition, opts.max_refine_passes, &meter)?;
    debug_assert!(stats.ratio() <= out.result.ratio() + 1e-12);
    Ok(PartitionResult {
        partition,
        stats,
        algorithm: "IG-Match+FM",
        split_rank: out.result.split_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_core::ig_match;
    use np_netlist::generate::{generate, GeneratorConfig};
    use std::time::Duration;

    #[test]
    fn hybrid_never_worse_than_plain() {
        let hg = generate(&GeneratorConfig::new(220, 240, 9).with_satellite(0.1, 4));
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let hybrid = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        assert!(hybrid.ratio() <= plain.result.ratio() + 1e-12);
        assert_eq!(hybrid.stats, hybrid.partition.cut_stats(&hg));
        assert_eq!(hybrid.algorithm, "IG-Match+FM");
    }

    #[test]
    fn hybrid_deterministic() {
        let hg = generate(&GeneratorConfig::new(180, 190, 2));
        let a = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        let b = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn zero_refine_passes_equals_plain() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let hybrid = ig_match_refined(
            &hg,
            &HybridOptions {
                max_refine_passes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(hybrid.partition, plain.result.partition);
    }

    #[test]
    fn exhausted_budget_surfaces_as_budget_error() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let err = ig_match_refined(
            &hg,
            &HybridOptions {
                budget: Budget::UNLIMITED.with_wall_clock(Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::Budget(_)), "{err}");
    }

    #[test]
    fn generous_budget_matches_unlimited() {
        let hg = generate(&GeneratorConfig::new(150, 170, 3));
        let unlimited = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        let budgeted = ig_match_refined(
            &hg,
            &HybridOptions {
                budget: Budget::UNLIMITED.with_wall_clock(Duration::from_secs(600)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(unlimited.partition, budgeted.partition);
    }
}
