//! Hall's 2-D spectral placement (paper Appendix A) rendered as an ASCII
//! density map — a visualization of the structure the spectral
//! partitioners exploit. The satellite block of a suite circuit shows up
//! as a separate blob along the Fiedler axis.
//!
//! ```text
//! cargo run --release --example placement [benchmark-name]
//! ```

use ig_match_repro::core::placement::module_placement;
use ig_match_repro::netlist::generate::mcnc_benchmark;

const WIDTH: usize = 72;
const HEIGHT: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Test04".into());
    let b = mcnc_benchmark(&name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let hg = &b.hypergraph;

    let p = module_placement(hg, 2, &Default::default())?;
    println!(
        "{}: {} modules placed with eigenvalues λ2 = {:.3e}, λ3 = {:.3e}\n",
        b.name,
        hg.num_modules(),
        p.eigenvalues[0],
        p.eigenvalues[1]
    );

    // normalize coordinates into the character grid
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for c in &p.coords {
        x_min = x_min.min(c[0]);
        x_max = x_max.max(c[0]);
        y_min = y_min.min(c[1]);
        y_max = y_max.max(c[1]);
    }
    let mut grid = vec![vec![0usize; WIDTH]; HEIGHT];
    for c in &p.coords {
        let gx = (((c[0] - x_min) / (x_max - x_min)) * (WIDTH - 1) as f64) as usize;
        let gy = (((c[1] - y_min) / (y_max - y_min)) * (HEIGHT - 1) as f64) as usize;
        grid[gy][gx] += 1;
    }
    const SHADES: [char; 7] = [' ', '.', ':', '+', 'o', 'O', '@'];
    for row in &grid {
        let line: String = row
            .iter()
            .map(|&count| SHADES[count.min(SHADES.len() - 1)])
            .collect();
        println!("|{line}|");
    }
    println!("\n(x = Fiedler coordinate, y = third eigenvector; denser glyphs = more modules)");
    Ok(())
}
