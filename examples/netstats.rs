//! Netlist anatomy: net-size histogram, cut-by-size table (paper Table 1)
//! and representation sparsity for one suite circuit.
//!
//! ```text
//! cargo run --release --example netstats [benchmark-name]
//! ```
//!
//! Defaults to `Prim2`; any suite name (`bm1`, `19ks`, `Prim1`, `Prim2`,
//! `Test02`..`Test06`) works.

use ig_match_repro::core::models::{clique_adjacency, intersection_adjacency};
use ig_match_repro::netlist::generate::mcnc_benchmark;
use ig_match_repro::netlist::stats::{CutBySize, NetlistSummary};
use ig_match_repro::{ig_match, IgMatchOptions, IgWeighting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Prim2".into());
    let b = mcnc_benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try Prim2, Test05, ...)"))?;
    let hg = &b.hypergraph;

    println!("{}: {}", b.name, NetlistSummary::of(hg));

    let clique = clique_adjacency(hg);
    let ig = intersection_adjacency(hg, IgWeighting::Paper);
    println!(
        "representation sparsity: clique model {} nonzeros, intersection graph {} ({:.2}x)",
        clique.nnz(),
        ig.nnz(),
        clique.nnz() as f64 / ig.nnz() as f64
    );

    let out = ig_match(hg, &IgMatchOptions::default())?;
    println!("\nIG-Match partition: {}", out.result);
    println!("\ncut statistics by net size (paper Table 1 format):");
    print!("{}", CutBySize::compute(hg, &out.result.partition));
    Ok(())
}
