//! Quickstart: partition a small netlist with all four algorithms,
//! compare their ratio cuts, then run the same flow as a composable
//! engine pipeline with stage tracing.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ig_match_repro::core::engine::stages::{IgMatchStage, RatioRefineStage};
use ig_match_repro::netlist::hypergraph_from_nets;
use ig_match_repro::{
    eig1, ig_match, ig_vote, rcut, Eig1Options, IgMatchOptions, IgVoteOptions, Pipeline,
    RcutOptions, RunContext, Stage, StageEvent,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-made circuit: two well-connected blocks of 8 modules each,
    // tied together by two bridge nets.
    let mut nets: Vec<Vec<u32>> = Vec::new();
    for base in [0u32, 8] {
        // ring + chords inside each block
        for i in 0..8 {
            nets.push(vec![base + i, base + (i + 1) % 8]);
        }
        nets.push(vec![base, base + 2, base + 4]);
        nets.push(vec![base + 1, base + 5]);
    }
    nets.push(vec![7, 8]); // bridge 1
    nets.push(vec![0, 15]); // bridge 2
    let hg = hypergraph_from_nets(16, &nets);

    println!(
        "netlist: {} modules, {} nets, {} pins\n",
        hg.num_modules(),
        hg.num_nets(),
        hg.num_pins()
    );

    let igm = ig_match(&hg, &IgMatchOptions::default())?;
    println!("{}", igm.result);
    println!(
        "  (matching bound: cut {} <= max matching {})",
        igm.result.stats.cut_nets, igm.matching_size
    );

    let igv = ig_vote(&hg, &IgVoteOptions::default())?;
    println!("{igv}");

    let e1 = eig1(&hg, &Eig1Options::default())?;
    println!("{e1}");

    let rc = rcut(&hg, &RcutOptions::default());
    println!(
        "RCut1.0*: cut={} areas={} ratio={:.3e} (best of 10 random starts)",
        rc.stats.cut_nets,
        rc.stats.areas(),
        rc.ratio()
    );

    // The same algorithms are engine stages: compose IG-Match with
    // ratio-objective FM refinement into one pipeline and watch it run.
    println!("\nengine pipeline (IG-Match -> ratio refinement):");
    let sink = |e: &StageEvent<'_>| {
        if let StageEvent::Finished {
            stage,
            outcome: Ok(r),
        } = e
        {
            println!("  stage {stage}: ratio {:.3e}", r.ratio());
        }
    };
    let ctx = RunContext::unlimited().with_events(&sink);
    let refined = Pipeline::named("IG-Match+FM")
        .then(IgMatchStage::new(IgMatchOptions::default()))
        .then(RatioRefineStage::new(20, "IG-Match+FM"))
        .run(&hg, None, &ctx)?;
    println!("{refined}");

    println!("\nmodules on the left side of the IG-Match partition:");
    let left = igm
        .result
        .partition
        .members(ig_match_repro::Side::Left)
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    println!("  {left}");
    Ok(())
}
