//! Runs all four partitioning algorithms across the whole synthetic MCNC
//! stand-in suite and prints a combined comparison — the workload of paper
//! Tables 2 and 3 in one view.
//!
//! ```text
//! cargo run --release --example benchmark_suite
//! ```

use ig_match_repro::baselines::{anneal, AnnealOptions};
use ig_match_repro::netlist::generate::mcnc_suite;
use ig_match_repro::{
    eig1, ig_match, ig_vote, rcut, Eig1Options, IgMatchOptions, IgVoteOptions, RcutOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Test", "modules", "nets", "SA", "RCut", "EIG1", "IG-Vote", "IG-Match"
    );
    let mut log_sums = [0.0f64; 5];
    let mut count = 0usize;
    for b in mcnc_suite() {
        let hg = &b.hypergraph;
        let sa = anneal(hg, &AnnealOptions::default());
        let rc = rcut(hg, &RcutOptions::default());
        let e1 = eig1(hg, &Eig1Options::default())?;
        let iv = ig_vote(hg, &IgVoteOptions::default())?;
        let im = ig_match(hg, &IgMatchOptions::default())?;
        let ratios = [
            sa.ratio(),
            rc.ratio(),
            e1.ratio(),
            iv.ratio(),
            im.result.ratio(),
        ];
        for (s, r) in log_sums.iter_mut().zip(ratios) {
            *s += r.ln();
        }
        count += 1;
        println!(
            "{:<8} {:>8} {:>8} | {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}",
            b.name,
            hg.num_modules(),
            hg.num_nets(),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[3],
            ratios[4]
        );
    }
    println!("\ngeometric-mean ratio cut:");
    for (name, s) in ["SA", "RCut", "EIG1", "IG-Vote", "IG-Match"]
        .iter()
        .zip(log_sums)
    {
        println!("  {:<9} {:.3e}", name, (s / count as f64).exp());
    }
    Ok(())
}
