//! Dumps the ratio-cut sweep curve of the spectral net ordering — the
//! "try all splits of the sorted eigenvector" picture behind §3 — as
//! tab-separated values, together with the matching-size bound at each
//! split.
//!
//! ```text
//! cargo run --release --example sweep_curve [benchmark-name] > curve.tsv
//! ```
//!
//! Columns: split rank, max-matching size (the Theorem-3 optimal
//! completion bound), completed cut, ratio cut.

use ig_match_repro::core::igmatch::{SplitClassification, SplitMatcher};
use ig_match_repro::core::models::intersection_neighbors;
use ig_match_repro::core::ordering::spectral_net_ordering;
use ig_match_repro::netlist::generate::mcnc_benchmark;
use ig_match_repro::netlist::{Bipartition, ModuleId, NetId, Side};
use ig_match_repro::IgWeighting;
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Prim1".into());
    let b = mcnc_benchmark(&name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let hg = &b.hypergraph;

    let order = spectral_net_ordering(hg, IgWeighting::Paper, &Default::default())?;
    let neighbors = intersection_neighbors(hg);
    let mut matcher = SplitMatcher::new(&neighbors);
    let mut class = SplitClassification::default();

    println!("rank\tmatching\tcut\tratio");
    let m = hg.num_nets();
    for (k, &net) in order[..m - 1].iter().enumerate() {
        matcher.move_to_r(net.0);
        matcher.classify_into(&mut class);
        // Phase II, evaluated directly (clarity over speed here)
        let mut in_l: HashSet<ModuleId> = HashSet::new();
        let mut in_r: HashSet<ModuleId> = HashSet::new();
        for &w in &class.winners_l {
            in_l.extend(hg.pins(NetId(w)));
        }
        for &w in &class.winners_r {
            in_r.extend(hg.pins(NetId(w)));
        }
        let score = |free_left: bool| -> (usize, f64) {
            let sides: Vec<Side> = hg
                .modules()
                .map(|md| {
                    if in_l.contains(&md) {
                        Side::Left
                    } else if in_r.contains(&md) {
                        Side::Right
                    } else if free_left {
                        Side::Left
                    } else {
                        Side::Right
                    }
                })
                .collect();
            let stats = Bipartition::from_sides(sides).cut_stats(hg);
            (stats.cut_nets, stats.ratio())
        };
        let (cut_a, ratio_a) = score(true);
        let (cut_b, ratio_b) = score(false);
        let (cut, ratio) = if ratio_a <= ratio_b {
            (cut_a, ratio_a)
        } else {
            (cut_b, ratio_b)
        };
        if ratio.is_finite() {
            println!("{k}\t{}\t{cut}\t{ratio:.6e}", matcher.matching_size());
        }
    }
    Ok(())
}
