//! Multi-way partitioning by recursive bipartition — the hierarchical
//! divide-and-conquer application that motivates the paper's introduction
//! (layout synthesis, hardware simulation and test all consume multi-block
//! decompositions).
//!
//! Uses [`np_core::multiway`] to split a suite circuit into blocks and
//! reports the block structure, the number of nets multiplexed between
//! blocks, and the per-block external-net counts driving test-vector
//! cost.
//!
//! ```text
//! cargo run --release --example multiway [benchmark-name] [max-block-size]
//! ```

use ig_match_repro::core::multiway::{recursive_ig_match, MultiwayOptions};
use ig_match_repro::netlist::generate::mcnc_benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Test02".into());
    let max_block: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);
    let b = mcnc_benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try Prim2, Test05, ...)"))?;
    let hg = &b.hypergraph;

    let mw = recursive_ig_match(
        hg,
        &MultiwayOptions {
            max_block_size: max_block,
            ..Default::default()
        },
    )?;

    println!(
        "{}: {} modules, {} nets -> {} blocks (max size {max_block})",
        b.name,
        hg.num_modules(),
        hg.num_nets(),
        mw.num_blocks()
    );
    let mut sizes = mw.block_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("block sizes: {sizes:?}");

    let crossing = mw.crossing_nets(hg);
    println!(
        "nets multiplexed between blocks: {crossing} / {} ({:.1}%)",
        hg.num_nets(),
        100.0 * crossing as f64 / hg.num_nets() as f64
    );

    let ext = mw.external_nets_per_block(hg);
    println!(
        "external nets per block (test-vector driver): min {} / median {} / max {}",
        ext.iter().min().unwrap(),
        {
            let mut e = ext.clone();
            e.sort_unstable();
            e[e.len() / 2]
        },
        ext.iter().max().unwrap()
    );

    let hist = mw.span_histogram(hg);
    println!("net span histogram (blocks touched -> nets):");
    for (span, count) in hist.iter().enumerate().filter(|(_, &c)| c > 0) {
        println!("  {span:>3} -> {count}");
    }
    Ok(())
}
